//! The streaming side: progress/convergence events and their sinks.
//!
//! Mirrors the `TraceSink` capture pattern: emitters call through
//! [`crate::Obs`] unconditionally, the [`ProgressSink`] trait defaults
//! every hook to a no-op, and a concrete sink ([`JsonlSink`]) turns the
//! stream into machine-readable JSONL on stderr or a file.  Events are
//! *progress*, not results: their arrival order may vary with the worker
//! count, which is why the determinism contract lives in the metrics dump
//! (see [`crate::MetricsDump`]) and never in the event stream.

use std::fmt;
use std::io::Write;
use std::path::Path;

use serde::{Serialize, Serializer};

/// One progress/convergence event.
///
/// Every serialized line is stamped with the campaign spec's fingerprint
/// (`"spec"`), so interleaved streams from different campaigns can be
/// separated after the fact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProgressEvent<'a> {
    /// A campaign started: `jobs` cells (grid modes) or strata (sampled).
    CampaignStart {
        /// Engine name (`full`, `trace-backed`, `sampled`, `smp`).
        engine: &'a str,
        /// Total cells (grid modes) or strata (sampled mode).
        jobs: u64,
    },
    /// One grid cell completed.
    Cell {
        /// Zero-based index in deterministic grid order.
        index: u64,
        /// Total cells in the grid.
        total: u64,
        /// Workload name.
        workload: &'a str,
        /// Scheme label.
        scheme: &'a str,
        /// Platform label.
        platform: &'a str,
        /// Fault-axis seed (`None` for the fault-free run).
        fault_seed: Option<u64>,
        /// Cycles the cell retired.
        cycles: u64,
        /// The phase that served the cell (see [`crate::Phase::label`]).
        phase: &'a str,
        /// Per-outcome fault-forensics tallies (label → count), present
        /// only when the campaign runs with forensics enabled.  `None`
        /// serializes no `"outcomes"` member at all, so forensics-off
        /// streams keep their historical bytes.
        outcomes: Option<&'a [(&'static str, u64)]>,
    },
    /// One stratum's state after a sampling round folded — the Wilson
    /// interval width is the convergence signal the stopping rule watches.
    Round {
        /// One-based round number (continues across shard/resume splits).
        round: u64,
        /// Workload name.
        workload: &'a str,
        /// Scheme label.
        scheme: &'a str,
        /// Platform label.
        platform: &'a str,
        /// Samples drawn so far.
        samples: u64,
        /// Failures observed so far.
        failures: u64,
        /// Wilson interval lower bound.
        ci_low: f64,
        /// Wilson interval upper bound.
        ci_high: f64,
        /// Interval width (`ci_high - ci_low`).
        width: f64,
        /// `true` once the stopping rule ended the stratum.
        converged: bool,
    },
    /// The campaign finished; the final report follows on stdout.
    CampaignEnd {
        /// Engine name.
        engine: &'a str,
        /// Cells or samples executed in this invocation.
        executed: u64,
    },
}

impl ProgressEvent<'_> {
    /// Encodes the event as one compact JSON line (no trailing newline),
    /// stamped with the spec fingerprint.
    #[must_use]
    pub fn to_json_line(&self, spec_fingerprint: &str) -> String {
        let mut s = Serializer::compact();
        s.begin_object();
        match self {
            ProgressEvent::CampaignStart { engine, jobs } => {
                s.field("event", "campaign_start");
                s.field("spec", spec_fingerprint);
                s.field("engine", *engine);
                s.field("jobs", jobs);
            }
            ProgressEvent::Cell {
                index,
                total,
                workload,
                scheme,
                platform,
                fault_seed,
                cycles,
                phase,
                outcomes,
            } => {
                s.field("event", "cell");
                s.field("spec", spec_fingerprint);
                s.field("index", index);
                s.field("total", total);
                s.field("workload", *workload);
                s.field("scheme", *scheme);
                s.field("platform", *platform);
                s.field("fault_seed", fault_seed);
                s.field("cycles", cycles);
                s.field("phase", *phase);
                if let Some(outcomes) = outcomes {
                    s.field("outcomes", &OutcomesJson(outcomes));
                }
            }
            ProgressEvent::Round {
                round,
                workload,
                scheme,
                platform,
                samples,
                failures,
                ci_low,
                ci_high,
                width,
                converged,
            } => {
                s.field("event", "round");
                s.field("spec", spec_fingerprint);
                s.field("round", round);
                s.field("workload", *workload);
                s.field("scheme", *scheme);
                s.field("platform", *platform);
                s.field("samples", samples);
                s.field("failures", failures);
                s.field("ci_low", ci_low);
                s.field("ci_high", ci_high);
                s.field("width", width);
                s.field("converged", converged);
            }
            ProgressEvent::CampaignEnd { engine, executed } => {
                s.field("event", "campaign_end");
                s.field("spec", spec_fingerprint);
                s.field("engine", *engine);
                s.field("executed", executed);
            }
        }
        s.end_object();
        s.finish()
    }
}

/// The `"outcomes"` member of a forensic cell event: one JSON object in
/// the tallies' canonical (fixed) order.
struct OutcomesJson<'a>(&'a [(&'static str, u64)]);

impl Serialize for OutcomesJson<'_> {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.begin_object();
        for (label, count) in self.0 {
            serializer.field(label, count);
        }
        serializer.end_object();
    }
}

/// Receiver of progress events.
///
/// Every method defaults to a no-op so emitters can call unconditionally
/// — attaching no sink (or a [`NullProgressSink`]) keeps streaming free.
pub trait ProgressSink: fmt::Debug + Send {
    /// One event, already stamped with the spec fingerprint by the caller.
    fn emit(&mut self, _event: &ProgressEvent<'_>, _spec_fingerprint: &str) {}
}

/// A sink that drops everything (the default behaviour, spelled out).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProgressSink;

impl ProgressSink for NullProgressSink {}

/// Streams each event as one JSON line, flushing per event so progress is
/// visible while the campaign runs.
pub struct JsonlSink {
    out: Box<dyn Write + Send>,
    label: &'static str,
}

impl JsonlSink {
    /// A sink writing to the process's stderr (never stdout: report bytes
    /// stay untouched).
    #[must_use]
    pub fn stderr() -> Self {
        JsonlSink {
            out: Box::new(std::io::stderr()),
            label: "stderr",
        }
    }

    /// A sink writing to (and truncating) `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the file cannot be created.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(JsonlSink {
            out: Box::new(std::fs::File::create(path)?),
            label: "file",
        })
    }

    /// A sink writing into any byte sink (used by tests).
    #[must_use]
    pub fn to_writer(out: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out,
            label: "writer",
        }
    }
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("out", &self.label)
            .finish()
    }
}

impl ProgressSink for JsonlSink {
    fn emit(&mut self, event: &ProgressEvent<'_>, spec_fingerprint: &str) {
        let line = event.to_json_line(spec_fingerprint);
        // A broken pipe must not take the campaign down with it; progress
        // is best-effort by design.
        let _ = writeln!(self.out, "{line}");
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_encode_as_single_json_lines() {
        let event = ProgressEvent::Cell {
            index: 3,
            total: 24,
            workload: "vector_sum",
            scheme: "laec",
            platform: "wb",
            fault_seed: Some(7),
            cycles: 1234,
            phase: "replay",
            outcomes: None,
        };
        let line = event.to_json_line("0x1234");
        assert!(!line.contains('\n'));
        assert!(
            !line.contains("outcomes"),
            "no forensics, no outcomes member"
        );
        let value = serde_json::parse(&line).expect("valid JSON");
        assert_eq!(value.get("event").and_then(|v| v.as_str()), Some("cell"));
        assert_eq!(value.get("spec").and_then(|v| v.as_str()), Some("0x1234"));
        assert_eq!(value.get("fault_seed").and_then(|v| v.as_u64()), Some(7));
    }

    #[test]
    fn forensic_cells_carry_outcome_tallies() {
        let tallies = [("masked", 2u64), ("sdc", 1u64)];
        let event = ProgressEvent::Cell {
            index: 1,
            total: 4,
            workload: "vector_sum",
            scheme: "no-ecc",
            platform: "wb",
            fault_seed: Some(3),
            cycles: 99,
            phase: "inject",
            outcomes: Some(&tallies),
        };
        let value = serde_json::parse(&event.to_json_line("0x2")).expect("valid JSON");
        let outcomes = value.get("outcomes").expect("outcomes member");
        assert_eq!(outcomes.get("masked").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(outcomes.get("sdc").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn fault_free_cells_serialize_a_null_seed() {
        let event = ProgressEvent::Cell {
            index: 0,
            total: 1,
            workload: "w",
            scheme: "s",
            platform: "p",
            fault_seed: None,
            cycles: 1,
            phase: "full_sim",
            outcomes: None,
        };
        let value = serde_json::parse(&event.to_json_line("0x0")).expect("valid JSON");
        assert!(value.get("fault_seed").expect("present").is_null());
    }

    #[test]
    fn round_events_carry_the_wilson_interval() {
        let event = ProgressEvent::Round {
            round: 2,
            workload: "w",
            scheme: "s",
            platform: "p",
            samples: 32,
            failures: 1,
            ci_low: 0.001,
            ci_high: 0.15,
            width: 0.149,
            converged: false,
        };
        let value = serde_json::parse(&event.to_json_line("0xff")).expect("valid JSON");
        assert_eq!(value.get("round").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(
            value.get("converged").and_then(|v| v.as_bool()),
            Some(false)
        );
        assert!(value.get("width").and_then(|v| v.as_f64()).is_some());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("unpoisoned").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buffer = Shared(Arc::new(Mutex::new(Vec::new())));
        let mut sink = JsonlSink::to_writer(Box::new(buffer.clone()));
        sink.emit(
            &ProgressEvent::CampaignStart {
                engine: "full",
                jobs: 8,
            },
            "0x1",
        );
        sink.emit(
            &ProgressEvent::CampaignEnd {
                engine: "full",
                executed: 8,
            },
            "0x1",
        );
        let bytes = buffer.0.lock().expect("unpoisoned").clone();
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            serde_json::parse(line).expect("each line is standalone JSON");
        }
    }
}

//! The streaming side: progress/convergence events and their sinks.
//!
//! Mirrors the `TraceSink` capture pattern: emitters call through
//! [`crate::Obs`] unconditionally, the [`ProgressSink`] trait defaults
//! every hook to a no-op, and a concrete sink ([`JsonlSink`]) turns the
//! stream into machine-readable JSONL on stderr or a file.  Events are
//! *progress*, not results: their arrival order may vary with the worker
//! count, which is why the determinism contract lives in the metrics dump
//! (see [`crate::MetricsDump`]) and never in the event stream.

use std::fmt;
use std::io::Write;
use std::path::Path;

use serde::{Serialize, Serializer};

/// One progress/convergence event.
///
/// Every serialized line is stamped with the campaign spec's fingerprint
/// (`"spec"`), so interleaved streams from different campaigns can be
/// separated after the fact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProgressEvent<'a> {
    /// A campaign started: `jobs` cells (grid modes) or strata (sampled).
    CampaignStart {
        /// Engine name (`full`, `trace-backed`, `sampled`, `smp`).
        engine: &'a str,
        /// Total cells (grid modes) or strata (sampled mode).
        jobs: u64,
    },
    /// One grid cell completed.
    Cell {
        /// Zero-based index in deterministic grid order.
        index: u64,
        /// Total cells in the grid.
        total: u64,
        /// Workload name.
        workload: &'a str,
        /// Scheme label.
        scheme: &'a str,
        /// Platform label.
        platform: &'a str,
        /// Fault-axis seed (`None` for the fault-free run).
        fault_seed: Option<u64>,
        /// Cycles the cell retired.
        cycles: u64,
        /// The phase that served the cell (see [`crate::Phase::label`]).
        phase: &'a str,
        /// Per-outcome fault-forensics tallies (label → count), present
        /// only when the campaign runs with forensics enabled.  `None`
        /// serializes no `"outcomes"` member at all, so forensics-off
        /// streams keep their historical bytes.
        outcomes: Option<&'a [(&'static str, u64)]>,
    },
    /// One stratum's state after a sampling round folded — the Wilson
    /// interval width is the convergence signal the stopping rule watches.
    Round {
        /// One-based round number (continues across shard/resume splits).
        round: u64,
        /// Workload name.
        workload: &'a str,
        /// Scheme label.
        scheme: &'a str,
        /// Platform label.
        platform: &'a str,
        /// Samples drawn so far.
        samples: u64,
        /// Failures observed so far.
        failures: u64,
        /// Wilson interval lower bound.
        ci_low: f64,
        /// Wilson interval upper bound.
        ci_high: f64,
        /// Interval width (`ci_high - ci_low`).
        width: f64,
        /// `true` once the stopping rule ended the stratum.
        converged: bool,
    },
    /// The campaign finished; the final report follows on stdout.
    CampaignEnd {
        /// Engine name.
        engine: &'a str,
        /// Cells or samples executed in this invocation.
        executed: u64,
    },
    /// A fleet job entered the persistent queue.  Job-scoped events stamp
    /// `"spec"` with the job's store key (the spec's 128-bit content hash),
    /// so one server's interleaved stream separates per job exactly like
    /// campaign streams separate per spec.
    JobQueued {
        /// Server-assigned job id.
        job: u64,
        /// Queue priority digit (`0` = most urgent, `9` = least).
        priority: u8,
    },
    /// A fleet job left the queue and began executing.
    JobStart {
        /// Server-assigned job id.
        job: u64,
        /// Shards the job was split into (`1` for unsharded jobs).
        shards: u64,
    },
    /// One shard's result merged into its job's aggregate
    /// (merge-on-arrival: shards land in completion order, not index
    /// order).
    ShardDone {
        /// Server-assigned job id.
        job: u64,
        /// Zero-based shard index.
        shard: u64,
        /// Id of the worker whose result arrived.
        worker: &'a str,
    },
    /// A submission was answered from the spec-addressed result store
    /// without executing anything.
    JobCached {
        /// Server-assigned job id.
        job: u64,
    },
    /// A fleet job finished; its artifacts are published in the store.
    JobEnd {
        /// Server-assigned job id.
        job: u64,
        /// `true` when the store served the job without execution.
        cached: bool,
    },
}

impl ProgressEvent<'_> {
    /// Encodes the event as one compact JSON line (no trailing newline),
    /// stamped with the spec fingerprint and the stream's monotone
    /// sequence number.
    ///
    /// `seq` is per *stream*, not per campaign: sinks number every line
    /// they write starting from 0 (or from the lines already present, for
    /// append sinks), so a consumer can detect gaps and reordering even
    /// though event arrival order is schedule-dependent.
    #[must_use]
    pub fn to_json_line(&self, spec_fingerprint: &str, seq: u64) -> String {
        let mut s = Serializer::compact();
        s.begin_object();
        s.field("seq", &seq);
        match self {
            ProgressEvent::CampaignStart { engine, jobs } => {
                s.field("event", "campaign_start");
                s.field("spec", spec_fingerprint);
                s.field("engine", *engine);
                s.field("jobs", jobs);
            }
            ProgressEvent::Cell {
                index,
                total,
                workload,
                scheme,
                platform,
                fault_seed,
                cycles,
                phase,
                outcomes,
            } => {
                s.field("event", "cell");
                s.field("spec", spec_fingerprint);
                s.field("index", index);
                s.field("total", total);
                s.field("workload", *workload);
                s.field("scheme", *scheme);
                s.field("platform", *platform);
                s.field("fault_seed", fault_seed);
                s.field("cycles", cycles);
                s.field("phase", *phase);
                if let Some(outcomes) = outcomes {
                    s.field("outcomes", &OutcomesJson(outcomes));
                }
            }
            ProgressEvent::Round {
                round,
                workload,
                scheme,
                platform,
                samples,
                failures,
                ci_low,
                ci_high,
                width,
                converged,
            } => {
                s.field("event", "round");
                s.field("spec", spec_fingerprint);
                s.field("round", round);
                s.field("workload", *workload);
                s.field("scheme", *scheme);
                s.field("platform", *platform);
                s.field("samples", samples);
                s.field("failures", failures);
                s.field("ci_low", ci_low);
                s.field("ci_high", ci_high);
                s.field("width", width);
                s.field("converged", converged);
            }
            ProgressEvent::CampaignEnd { engine, executed } => {
                s.field("event", "campaign_end");
                s.field("spec", spec_fingerprint);
                s.field("engine", *engine);
                s.field("executed", executed);
            }
            ProgressEvent::JobQueued { job, priority } => {
                s.field("event", "job_queued");
                s.field("spec", spec_fingerprint);
                s.field("job", job);
                s.field("priority", priority);
            }
            ProgressEvent::JobStart { job, shards } => {
                s.field("event", "job_start");
                s.field("spec", spec_fingerprint);
                s.field("job", job);
                s.field("shards", shards);
            }
            ProgressEvent::ShardDone { job, shard, worker } => {
                s.field("event", "shard_done");
                s.field("spec", spec_fingerprint);
                s.field("job", job);
                s.field("shard", shard);
                s.field("worker", *worker);
            }
            ProgressEvent::JobCached { job } => {
                s.field("event", "job_cached");
                s.field("spec", spec_fingerprint);
                s.field("job", job);
            }
            ProgressEvent::JobEnd { job, cached } => {
                s.field("event", "job_end");
                s.field("spec", spec_fingerprint);
                s.field("job", job);
                s.field("cached", cached);
            }
        }
        s.end_object();
        s.finish()
    }
}

/// The `"outcomes"` member of a forensic cell event: one JSON object in
/// the tallies' canonical (fixed) order.
struct OutcomesJson<'a>(&'a [(&'static str, u64)]);

impl Serialize for OutcomesJson<'_> {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.begin_object();
        for (label, count) in self.0 {
            serializer.field(label, count);
        }
        serializer.end_object();
    }
}

/// Receiver of progress events.
///
/// Every method defaults to a no-op so emitters can call unconditionally
/// — attaching no sink (or a [`NullProgressSink`]) keeps streaming free.
pub trait ProgressSink: fmt::Debug + Send {
    /// One event, already stamped with the spec fingerprint by the caller.
    fn emit(&mut self, _event: &ProgressEvent<'_>, _spec_fingerprint: &str) {}
}

/// A sink that drops everything (the default behaviour, spelled out).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProgressSink;

impl ProgressSink for NullProgressSink {}

/// Streams each event as one JSON line, flushing per event so progress is
/// visible while the campaign runs.  Lines are numbered with a monotone
/// `"seq"` member starting at 0 (or after the lines already present, for
/// [`JsonlSink::append`]), so consumers can detect gaps and reordering.
pub struct JsonlSink {
    out: Box<dyn Write + Send>,
    label: &'static str,
    seq: u64,
}

impl JsonlSink {
    /// A sink writing to the process's stderr (never stdout: report bytes
    /// stay untouched).
    #[must_use]
    pub fn stderr() -> Self {
        JsonlSink {
            out: Box::new(std::io::stderr()),
            label: "stderr",
            seq: 0,
        }
    }

    /// A sink writing to (and truncating) `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the file cannot be created.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(JsonlSink {
            out: Box::new(std::fs::File::create(path)?),
            label: "file",
            seq: 0,
        })
    }

    /// A sink appending to `path` (created when absent), numbering new
    /// events after the lines already present — how a restarted fleet
    /// server keeps one monotone sequence across its whole event log.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the file cannot be read or opened.
    pub fn append(path: &Path) -> std::io::Result<Self> {
        let existing = match std::fs::read(path) {
            Ok(bytes) => bytes.iter().filter(|&&byte| byte == b'\n').count() as u64,
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => 0,
            Err(error) => return Err(error),
        };
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonlSink {
            out: Box::new(file),
            label: "file",
            seq: existing,
        })
    }

    /// A sink writing into any byte sink (used by tests).
    #[must_use]
    pub fn to_writer(out: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out,
            label: "writer",
            seq: 0,
        }
    }

    /// The sequence number the next emitted line will carry.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.seq
    }
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("out", &self.label)
            .finish()
    }
}

impl ProgressSink for JsonlSink {
    fn emit(&mut self, event: &ProgressEvent<'_>, spec_fingerprint: &str) {
        let line = event.to_json_line(spec_fingerprint, self.seq);
        self.seq += 1;
        // A broken pipe must not take the campaign down with it; progress
        // is best-effort by design.
        let _ = writeln!(self.out, "{line}");
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_encode_as_single_json_lines() {
        let event = ProgressEvent::Cell {
            index: 3,
            total: 24,
            workload: "vector_sum",
            scheme: "laec",
            platform: "wb",
            fault_seed: Some(7),
            cycles: 1234,
            phase: "replay",
            outcomes: None,
        };
        let line = event.to_json_line("0x1234", 0);
        assert!(!line.contains('\n'));
        assert!(
            !line.contains("outcomes"),
            "no forensics, no outcomes member"
        );
        let value = serde_json::parse(&line).expect("valid JSON");
        assert_eq!(value.get("event").and_then(|v| v.as_str()), Some("cell"));
        assert_eq!(value.get("spec").and_then(|v| v.as_str()), Some("0x1234"));
        assert_eq!(value.get("fault_seed").and_then(|v| v.as_u64()), Some(7));
    }

    #[test]
    fn forensic_cells_carry_outcome_tallies() {
        let tallies = [("masked", 2u64), ("sdc", 1u64)];
        let event = ProgressEvent::Cell {
            index: 1,
            total: 4,
            workload: "vector_sum",
            scheme: "no-ecc",
            platform: "wb",
            fault_seed: Some(3),
            cycles: 99,
            phase: "inject",
            outcomes: Some(&tallies),
        };
        let value = serde_json::parse(&event.to_json_line("0x2", 5)).expect("valid JSON");
        let outcomes = value.get("outcomes").expect("outcomes member");
        assert_eq!(outcomes.get("masked").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(outcomes.get("sdc").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn fault_free_cells_serialize_a_null_seed() {
        let event = ProgressEvent::Cell {
            index: 0,
            total: 1,
            workload: "w",
            scheme: "s",
            platform: "p",
            fault_seed: None,
            cycles: 1,
            phase: "full_sim",
            outcomes: None,
        };
        let value = serde_json::parse(&event.to_json_line("0x0", 0)).expect("valid JSON");
        assert!(value.get("fault_seed").expect("present").is_null());
    }

    #[test]
    fn round_events_carry_the_wilson_interval() {
        let event = ProgressEvent::Round {
            round: 2,
            workload: "w",
            scheme: "s",
            platform: "p",
            samples: 32,
            failures: 1,
            ci_low: 0.001,
            ci_high: 0.15,
            width: 0.149,
            converged: false,
        };
        let value = serde_json::parse(&event.to_json_line("0xff", 3)).expect("valid JSON");
        assert_eq!(value.get("round").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(
            value.get("converged").and_then(|v| v.as_bool()),
            Some(false)
        );
        assert!(value.get("width").and_then(|v| v.as_f64()).is_some());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("unpoisoned").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buffer = Shared(Arc::new(Mutex::new(Vec::new())));
        let mut sink = JsonlSink::to_writer(Box::new(buffer.clone()));
        sink.emit(
            &ProgressEvent::CampaignStart {
                engine: "full",
                jobs: 8,
            },
            "0x1",
        );
        sink.emit(
            &ProgressEvent::CampaignEnd {
                engine: "full",
                executed: 8,
            },
            "0x1",
        );
        let bytes = buffer.0.lock().expect("unpoisoned").clone();
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            serde_json::parse(line).expect("each line is standalone JSON");
        }
    }

    /// Pins the `seq` schema: every line carries it, it starts at 0, and
    /// it increments by exactly one per line on a given sink.
    #[test]
    fn jsonl_sink_numbers_events_monotonically() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("unpoisoned").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buffer = Shared(Arc::new(Mutex::new(Vec::new())));
        let mut sink = JsonlSink::to_writer(Box::new(buffer.clone()));
        assert_eq!(sink.next_seq(), 0);
        for round in 0..3u64 {
            sink.emit(
                &ProgressEvent::CampaignStart {
                    engine: "full",
                    jobs: round,
                },
                "0x1",
            );
        }
        assert_eq!(sink.next_seq(), 3);
        let bytes = buffer.0.lock().expect("unpoisoned").clone();
        let text = String::from_utf8(bytes).expect("utf8");
        for (expected, line) in text.lines().enumerate() {
            let value = serde_json::parse(line).expect("valid JSON");
            assert_eq!(
                value.get("seq").and_then(|v| v.as_u64()),
                Some(expected as u64),
                "line {expected} carries its own index as seq"
            );
        }
    }

    /// Pins the job-scoped fleet event schema extension.
    #[test]
    fn job_events_encode_their_lifecycle_fields() {
        let key = "0x00000000000000000000000000001234";
        let cases: [(ProgressEvent<'_>, &str); 5] = [
            (
                ProgressEvent::JobQueued {
                    job: 7,
                    priority: 5,
                },
                "job_queued",
            ),
            (ProgressEvent::JobStart { job: 7, shards: 4 }, "job_start"),
            (
                ProgressEvent::ShardDone {
                    job: 7,
                    shard: 2,
                    worker: "w1",
                },
                "shard_done",
            ),
            (ProgressEvent::JobCached { job: 7 }, "job_cached"),
            (
                ProgressEvent::JobEnd {
                    job: 7,
                    cached: false,
                },
                "job_end",
            ),
        ];
        for (event, name) in cases {
            let value = serde_json::parse(&event.to_json_line(key, 9)).expect("valid JSON");
            assert_eq!(value.get("event").and_then(|v| v.as_str()), Some(name));
            assert_eq!(value.get("spec").and_then(|v| v.as_str()), Some(key));
            assert_eq!(value.get("seq").and_then(|v| v.as_u64()), Some(9));
            assert_eq!(value.get("job").and_then(|v| v.as_u64()), Some(7));
        }
        let done = ProgressEvent::ShardDone {
            job: 1,
            shard: 3,
            worker: "w0",
        };
        let value = serde_json::parse(&done.to_json_line(key, 0)).expect("valid JSON");
        assert_eq!(value.get("shard").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(value.get("worker").and_then(|v| v.as_str()), Some("w0"));
    }

    /// An append sink continues the numbering of the lines already in the
    /// file — the fleet server's across-restart monotonicity.
    #[test]
    fn append_sink_resumes_numbering_after_existing_lines() {
        let dir = std::env::temp_dir().join(format!(
            "laec-obs-append-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("events.jsonl");
        {
            let mut sink = JsonlSink::create(&path).expect("create");
            sink.emit(
                &ProgressEvent::JobQueued {
                    job: 1,
                    priority: 5,
                },
                "0xabc",
            );
            sink.emit(&ProgressEvent::JobStart { job: 1, shards: 2 }, "0xabc");
        }
        {
            let mut sink = JsonlSink::append(&path).expect("append");
            assert_eq!(sink.next_seq(), 2, "two lines already present");
            sink.emit(
                &ProgressEvent::JobEnd {
                    job: 1,
                    cached: false,
                },
                "0xabc",
            );
        }
        let text = std::fs::read_to_string(&path).expect("readable");
        let seqs: Vec<u64> = text
            .lines()
            .map(|line| {
                serde_json::parse(line)
                    .expect("valid JSON")
                    .get("seq")
                    .and_then(|v| v.as_u64())
                    .expect("seq present")
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

//! `laec_obs` — deterministic instrumentation for the LAEC campaign engine.
//!
//! The crate separates three concerns that are usually (and harmfully)
//! mixed in one "metrics" bucket:
//!
//! * **Deterministic metrics** — counters, gauges and histograms that are
//!   pure functions of the campaign's byte-identical report, so their
//!   serialized section can itself be `cmp`'d across thread counts,
//!   shard/resume splits and execution engines.  See [`MetricsDump`].
//! * **Wall-clock self-profile** — phase-scoped [`Span`] timings (decode,
//!   replay, inject, fallback, checkpoint, render) that answer "where does
//!   campaign time go?" and are explicitly excluded from every byte
//!   comparison.
//! * **Progress streaming** — [`ProgressEvent`]s (per-cell completion,
//!   per-stratum Wilson-interval convergence) flowing to a
//!   [`ProgressSink`] such as the JSONL sink, never to stdout.
//!
//! The [`Obs`] handle follows the `TraceSink` discipline: a disabled
//! handle is a `None` and every call site pays one branch — no clock
//! reads, no locks, no allocation.  Instrumented code takes `&Obs` and
//! calls unconditionally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod progress;
mod span;
pub mod wallclock;

pub use metrics::{Histogram, MetricsDump, PhaseTiming, SpanStats, METRICS_SCHEMA};
pub use progress::{JsonlSink, NullProgressSink, ProgressEvent, ProgressSink};
pub use span::{Phase, Span};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

pub(crate) use span::OpenSpan;

/// Locks a registry mutex, recovering from poisoning.
///
/// A poisoned mutex means some *other* thread panicked while holding it.
/// The observability layer must never amplify that into a second panic of
/// its own (the `Obs` handle is threaded through library code, where
/// `laec-lint` forbids panics): it takes the registry as-is.  The worst
/// case is one torn self-profile entry — report bytes never flow through
/// this registry, so the determinism contract is untouched.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The shared observability handle.
///
/// Cloning is cheap (an `Arc` bump, or nothing when disabled); a clone
/// observes into the same registry, which is how worker threads and the
/// coordinating thread share one dump.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

#[derive(Debug, Default)]
pub(crate) struct ObsInner {
    spec_fingerprint: Mutex<String>,
    engine: Mutex<String>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    engine_counters: Mutex<BTreeMap<String, u64>>,
    pub(crate) timings: Mutex<BTreeMap<&'static str, SpanStats>>,
    progress: Mutex<Option<Box<dyn ProgressSink>>>,
    has_progress: AtomicBool,
}

impl Obs {
    /// The inert handle: every operation is a single-branch no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// A live handle with an empty registry.
    #[must_use]
    pub fn enabled() -> Self {
        Obs {
            inner: Some(Arc::new(ObsInner::default())),
        }
    }

    /// `true` when observations are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Stamps the registry with the campaign identity: the spec
    /// fingerprint (as a `0x`-prefixed hex string) and the engine name.
    pub fn set_context(&self, spec_fingerprint: &str, engine: &str) {
        if let Some(inner) = &self.inner {
            *lock(&inner.spec_fingerprint) = spec_fingerprint.to_string();
            *lock(&inner.engine) = engine.to_string();
        }
    }

    /// Sets a deterministic counter to `value` (projections overwrite, so
    /// re-running a projection cannot double-count).
    pub fn counter_set(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            lock(&inner.counters).insert(name.to_string(), value);
        }
    }

    /// Adds `delta` to a deterministic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            *lock(&inner.counters).entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Sets a deterministic gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            lock(&inner.gauges).insert(name.to_string(), value);
        }
    }

    /// Adds `delta` observations to bucket `bucket` of histogram `name`.
    pub fn histogram_add(&self, name: &str, bucket: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            lock(&inner.histograms)
                .entry(name.to_string())
                .or_default()
                .add(bucket, delta);
        }
    }

    /// Sets an engine-specific deterministic counter (`trace.*`,
    /// `sampler.*`) to `value`.
    pub fn engine_counter_set(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            lock(&inner.engine_counters).insert(name.to_string(), value);
        }
    }

    /// Opens a wall-clock timing span for `phase`; the span records on
    /// drop.  Inert (no clock read) when disabled.
    pub fn span(&self, phase: Phase) -> Span<'_> {
        Span {
            active: self.inner.as_deref().map(|obs| OpenSpan {
                obs,
                phase,
                started: wallclock::now(),
            }),
        }
    }

    /// Attaches a progress sink; subsequent [`Obs::emit`] calls stream to
    /// it.  Replaces any previously attached sink.
    pub fn attach_progress(&self, sink: Box<dyn ProgressSink>) {
        if let Some(inner) = &self.inner {
            *lock(&inner.progress) = Some(sink);
            inner.has_progress.store(true, Ordering::Release);
        }
    }

    /// Streams one progress event to the attached sink, stamped with the
    /// spec fingerprint.  Free (one branch + one relaxed load) when no
    /// sink is attached.
    pub fn emit(&self, event: &ProgressEvent<'_>) {
        if let Some(inner) = &self.inner {
            if !inner.has_progress.load(Ordering::Acquire) {
                return;
            }
            let fingerprint = lock(&inner.spec_fingerprint).clone();
            if let Some(sink) = lock(&inner.progress).as_mut() {
                sink.emit(event, &fingerprint);
            }
        }
    }

    /// Snapshots the registry into a serializable [`MetricsDump`].
    ///
    /// Disabled handles return an empty dump (schema stamped, everything
    /// else blank).
    #[must_use]
    pub fn dump(&self) -> MetricsDump {
        let Some(inner) = &self.inner else {
            return MetricsDump {
                schema: METRICS_SCHEMA,
                ..MetricsDump::default()
            };
        };
        let timings = lock(&inner.timings)
            .iter()
            .map(|(phase, stats)| PhaseTiming {
                phase: (*phase).to_string(),
                calls: stats.calls,
                total_ms: stats.total_ns as f64 / 1.0e6,
            })
            .collect();
        MetricsDump {
            schema: METRICS_SCHEMA,
            spec_fingerprint: lock(&inner.spec_fingerprint).clone(),
            engine: lock(&inner.engine).clone(),
            counters: lock(&inner.counters).clone(),
            gauges: lock(&inner.gauges).clone(),
            histograms: lock(&inner.histograms).clone(),
            engine_counters: lock(&inner.engine_counters).clone(),
            timings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.set_context("0x1", "full");
        obs.counter_set("campaign.cells", 9);
        obs.counter_add("campaign.cells", 1);
        obs.gauge_set("rate", 0.5);
        obs.histogram_add("h", "b", 1);
        obs.engine_counter_set("trace.replayed", 3);
        obs.emit(&ProgressEvent::CampaignEnd {
            engine: "full",
            executed: 1,
        });
        drop(obs.span(Phase::Replay));
        let dump = obs.dump();
        assert_eq!(dump.schema, METRICS_SCHEMA);
        assert!(dump.counters.is_empty());
        assert!(dump.timings.is_empty());
    }

    #[test]
    fn enabled_handle_accumulates_and_dumps() {
        let obs = Obs::enabled();
        obs.set_context("0xabc", "trace-backed");
        obs.counter_set("campaign.cells", 24);
        obs.counter_add("campaign.cells", 1);
        obs.gauge_set("campaign.load_hit_rate", 0.875);
        obs.histogram_add("campaign.cells_by_platform", "wb", 25);
        obs.engine_counter_set("trace.replayed", 16);
        {
            let _span = obs.span(Phase::Replay);
        }
        let dump = obs.dump();
        assert_eq!(dump.spec_fingerprint, "0xabc");
        assert_eq!(dump.engine, "trace-backed");
        assert_eq!(dump.counters.get("campaign.cells"), Some(&25));
        assert_eq!(dump.engine_counters.get("trace.replayed"), Some(&16));
        assert_eq!(dump.histograms["campaign.cells_by_platform"].get("wb"), 25);
        assert_eq!(dump.timings.len(), 1);
        assert_eq!(dump.timings[0].phase, "replay");
        assert_eq!(dump.timings[0].calls, 1);
    }

    #[test]
    fn clones_share_one_registry() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        clone.counter_add("campaign.cells", 2);
        obs.counter_add("campaign.cells", 3);
        assert_eq!(obs.dump().counters.get("campaign.cells"), Some(&5));
    }

    #[test]
    fn emit_reaches_an_attached_sink() {
        use std::sync::{Arc, Mutex};

        #[derive(Debug, Clone, Default)]
        struct Capture(Arc<Mutex<Vec<String>>>);
        impl ProgressSink for Capture {
            fn emit(&mut self, event: &ProgressEvent<'_>, spec_fingerprint: &str) {
                let mut lines = self.0.lock().expect("unpoisoned");
                let seq = lines.len() as u64;
                lines.push(event.to_json_line(spec_fingerprint, seq));
            }
        }

        let obs = Obs::enabled();
        obs.set_context("0x2a", "sampled");
        let capture = Capture::default();
        let lines = capture.0.clone();
        obs.attach_progress(Box::new(capture));
        obs.emit(&ProgressEvent::CampaignStart {
            engine: "sampled",
            jobs: 4,
        });
        let lines = lines.lock().expect("unpoisoned");
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"spec\":\"0x2a\""));
    }
}

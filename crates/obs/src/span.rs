//! Phase-scoped wall-clock timing spans.
//!
//! A [`Phase`] names one stage of campaign execution; [`crate::Obs::span`]
//! opens a [`Span`] guard that accumulates the scope's elapsed wall-clock
//! time into the registry's timing table on drop.  When observability is
//! disabled the guard holds nothing and the scope pays neither a clock
//! read nor a lock — the same pay-nothing-when-off discipline as the
//! `TraceSink` capture hooks.

/// One instrumented stage of campaign execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Decoding a cached recording from disk.
    TraceDecode,
    /// Recording a cell's fault-free run.
    TraceRecord,
    /// Replaying a recording against the memory hierarchy.
    Replay,
    /// A faulty cell under full simulation (the injection path).
    Inject,
    /// A fault-free cell under full simulation.
    FullSim,
    /// Full re-simulation of a cell whose replay diverged.
    FullSimFallback,
    /// One round of the stratified sampler (schedule, execute, fold).
    SamplerRound,
    /// Writing a sampler checkpoint to disk.
    CheckpointWrite,
    /// Rendering the final report (text or JSON).
    ReportRender,
}

impl Phase {
    /// The stable label the self-profile table and the JSONL events use.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::TraceDecode => "trace_decode",
            Phase::TraceRecord => "trace_record",
            Phase::Replay => "replay",
            Phase::Inject => "inject",
            Phase::FullSim => "full_sim",
            Phase::FullSimFallback => "full_sim_fallback",
            Phase::SamplerRound => "sampler_round",
            Phase::CheckpointWrite => "checkpoint_write",
            Phase::ReportRender => "report_render",
        }
    }
}

/// An open timing span; closes (and records) when dropped.
///
/// Obtained from [`crate::Obs::span`].  An inert span (observability off)
/// is a no-op from construction to drop.
#[derive(Debug)]
#[must_use = "a span measures the scope it is alive in"]
pub struct Span<'a> {
    pub(crate) active: Option<OpenSpan<'a>>,
}

#[derive(Debug)]
pub(crate) struct OpenSpan<'a> {
    pub(crate) obs: &'a crate::ObsInner,
    pub(crate) phase: Phase,
    pub(crate) started: std::time::Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(open) = self.active.take() {
            let elapsed = open.started.elapsed();
            let mut timings = crate::lock(&open.obs.timings);
            let stats = timings.entry(open.phase.label()).or_default();
            stats.calls += 1;
            stats.total_ns += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_distinct() {
        let phases = [
            Phase::TraceDecode,
            Phase::TraceRecord,
            Phase::Replay,
            Phase::Inject,
            Phase::FullSim,
            Phase::FullSimFallback,
            Phase::SamplerRound,
            Phase::CheckpointWrite,
            Phase::ReportRender,
        ];
        let labels: std::collections::BTreeSet<&str> = phases.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), phases.len());
        assert!(labels.contains("full_sim_fallback"));
    }

    #[test]
    fn inert_span_is_a_no_op() {
        let span = Span { active: None };
        drop(span);
    }
}

//! The metric value types and the serializable metrics dump.
//!
//! A [`MetricsDump`] is the end-of-campaign snapshot of the registry inside
//! [`crate::Obs`].  Its layout enforces the crate's central contract: the
//! deterministic sections (`counters`, `gauges`, `histograms`,
//! `engine_counters`) are kept strictly separate from the wall-clock
//! `timings` section, so the deterministic part can be `cmp`'d across
//! thread counts, shard/resume splits and — for the engine-independent
//! subset — across execution engines, while the timings remain free to
//! vary run to run.

use std::collections::BTreeMap;

use serde::{Serialize, Serializer};
use serde_json::Value;

/// The metrics dump layout version.
pub const METRICS_SCHEMA: u64 = 1;

/// A labelled-bucket histogram: deterministic counts keyed by bucket name.
///
/// Buckets are kept sorted (a `BTreeMap`), so serialization order never
/// depends on insertion order — the property that lets histograms live in
/// the byte-compared section of a [`MetricsDump`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: BTreeMap<String, u64>,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Adds `delta` observations to `bucket` (creating it at zero).
    pub fn add(&mut self, bucket: &str, delta: u64) {
        *self.buckets.entry(bucket.to_string()).or_insert(0) += delta;
    }

    /// The count in `bucket` (zero when absent).
    #[must_use]
    pub fn get(&self, bucket: &str) -> u64 {
        self.buckets.get(bucket).copied().unwrap_or(0)
    }

    /// Total observations across all buckets.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.values().sum()
    }

    /// `true` when no bucket has been touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// The buckets in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.buckets
            .iter()
            .map(|(name, count)| (name.as_str(), *count))
    }
}

impl Serialize for Histogram {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.begin_object();
        for (bucket, count) in &self.buckets {
            serializer.field(bucket, count);
        }
        serializer.end_object();
    }
}

/// Accumulated wall-clock time of one instrumented phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed spans of this phase.
    pub calls: u64,
    /// Total time inside the phase, in nanoseconds.
    pub total_ns: u64,
}

/// One row of the self-profile table: a phase and its accumulated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Phase label (see [`crate::Phase::label`]).
    pub phase: String,
    /// Completed spans of the phase.
    pub calls: u64,
    /// Total wall-clock milliseconds inside the phase.
    pub total_ms: f64,
}

impl Serialize for PhaseTiming {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.begin_object();
        serializer.field("phase", self.phase.as_str());
        serializer.field("calls", &self.calls);
        serializer.field("total_ms", &self.total_ms);
        serializer.end_object();
    }
}

/// An end-of-campaign metrics snapshot.
///
/// Section contract (asserted by the workspace's determinism tests and CI):
///
/// * `counters`, `gauges`, `histograms` — pure projections of the
///   byte-identical campaign report: identical across thread counts,
///   shard/resume splits **and** execution engines driving the same spec.
/// * `engine_counters` — deterministic for a given engine (identical
///   across thread counts; the sampler's survive shard/resume splits).
/// * `timings` — wall-clock self-profile, explicitly excluded from every
///   byte comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsDump {
    /// Layout version ([`METRICS_SCHEMA`]).
    pub schema: u64,
    /// FNV-1a fingerprint of the campaign spec's canonical JSON, as a
    /// `0x`-prefixed hex string (a string survives consumers that parse
    /// JSON numbers as doubles).
    pub spec_fingerprint: String,
    /// The engine that produced the campaign (`full`, `trace-backed`,
    /// `sampled`, `smp`).
    pub engine: String,
    /// Deterministic, engine-independent counters.
    pub counters: BTreeMap<String, u64>,
    /// Deterministic, engine-independent gauges (ratios and axis sizes).
    pub gauges: BTreeMap<String, f64>,
    /// Deterministic, engine-independent histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Deterministic counters specific to the engine that ran (`trace.*`,
    /// `sampler.*`).
    pub engine_counters: BTreeMap<String, u64>,
    /// Wall-clock self-profile, sorted by phase label.
    pub timings: Vec<PhaseTiming>,
}

fn counter_object(serializer: &mut Serializer, key: &str, map: &BTreeMap<String, u64>) {
    serializer.field(key, &MapAsObject(map));
}

struct MapAsObject<'a, T>(&'a BTreeMap<String, T>);

impl<T: Serialize> Serialize for MapAsObject<'_, T> {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.begin_object();
        for (name, value) in self.0 {
            serializer.field(name, value);
        }
        serializer.end_object();
    }
}

impl MetricsDump {
    /// The full dump (deterministic sections first, timings last) as
    /// pretty-printed JSON — what `campaign --metrics-out FILE` writes.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut serializer = Serializer::pretty();
        serializer.begin_object();
        serializer.field("schema", &self.schema);
        serializer.field("spec_fingerprint", self.spec_fingerprint.as_str());
        serializer.field("engine", self.engine.as_str());
        counter_object(&mut serializer, "counters", &self.counters);
        serializer.field("gauges", &MapAsObject(&self.gauges));
        serializer.field("histograms", &MapAsObject(&self.histograms));
        counter_object(&mut serializer, "engine_counters", &self.engine_counters);
        serializer.field("timings", &self.timings);
        serializer.end_object();
        serializer.finish()
    }

    /// The byte-comparable counter section: everything deterministic,
    /// nothing wall-clock.  Identical across thread counts and (for
    /// sampled campaigns) shard/resume splits.
    #[must_use]
    pub fn counter_section_json(&self) -> String {
        let mut serializer = Serializer::pretty();
        serializer.begin_object();
        serializer.field("spec_fingerprint", self.spec_fingerprint.as_str());
        serializer.field("engine", self.engine.as_str());
        counter_object(&mut serializer, "counters", &self.counters);
        serializer.field("gauges", &MapAsObject(&self.gauges));
        serializer.field("histograms", &MapAsObject(&self.histograms));
        counter_object(&mut serializer, "engine_counters", &self.engine_counters);
        serializer.end_object();
        serializer.finish()
    }

    /// The engine-independent subset of the counter section: identical
    /// even across execution engines (full simulation vs trace-backed
    /// replay) driving the same grid, because every value is a projection
    /// of the byte-identical report.  The spec fingerprint is deliberately
    /// omitted — it covers the execution mode, which is exactly what this
    /// section abstracts over.
    #[must_use]
    pub fn campaign_section_json(&self) -> String {
        let mut serializer = Serializer::pretty();
        serializer.begin_object();
        counter_object(&mut serializer, "counters", &self.counters);
        serializer.field("gauges", &MapAsObject(&self.gauges));
        serializer.field("histograms", &MapAsObject(&self.histograms));
        serializer.end_object();
        serializer.finish()
    }

    /// Parses a dump previously written by [`MetricsDump::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed or missing element.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = serde_json::parse(text).map_err(|e| e.to_string())?;
        let schema = require_u64(&root, "schema")?;
        if schema != METRICS_SCHEMA {
            return Err(format!("unsupported metrics schema {schema}"));
        }
        let spec_fingerprint = require_str(&root, "spec_fingerprint")?.to_string();
        let engine = require_str(&root, "engine")?.to_string();
        let counters = u64_map(&root, "counters")?;
        let engine_counters = u64_map(&root, "engine_counters")?;
        let mut gauges = BTreeMap::new();
        for (name, value) in require_object(&root, "gauges")? {
            let number = value
                .as_f64()
                .ok_or_else(|| format!("gauge `{name}` is not a number"))?;
            gauges.insert(name.clone(), number);
        }
        let mut histograms = BTreeMap::new();
        for (name, value) in require_object(&root, "histograms")? {
            let mut histogram = Histogram::new();
            for (bucket, count) in value
                .as_object()
                .ok_or_else(|| format!("histogram `{name}` is not an object"))?
            {
                let count = count
                    .as_u64()
                    .ok_or_else(|| format!("bucket `{name}.{bucket}` is not a count"))?;
                histogram.add(bucket, count);
            }
            histograms.insert(name.clone(), histogram);
        }
        let mut timings = Vec::new();
        for row in root
            .get("timings")
            .and_then(Value::as_array)
            .ok_or("`timings` is not an array")?
        {
            timings.push(PhaseTiming {
                phase: require_str(row, "phase")?.to_string(),
                calls: require_u64(row, "calls")?,
                total_ms: row
                    .get("total_ms")
                    .and_then(Value::as_f64)
                    .ok_or("`total_ms` is not a number")?,
            });
        }
        Ok(MetricsDump {
            schema,
            spec_fingerprint,
            engine,
            counters,
            gauges,
            histograms,
            engine_counters,
            timings,
        })
    }

    /// Renders the dump as an aligned human-readable table (the
    /// `laec-cli stats` output).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;

        let mut out = String::new();
        let _ = writeln!(
            out,
            "metrics dump (schema {}, engine {}, spec {})",
            self.schema, self.engine, self.spec_fingerprint,
        );
        let width = self
            .counters
            .keys()
            .chain(self.engine_counters.keys())
            .chain(self.gauges.keys())
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max(24);
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounters (deterministic):");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<width$} {value:>16}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "\ngauges (deterministic):");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<width$} {value:>16.6}");
            }
        }
        for (name, histogram) in &self.histograms {
            let _ = writeln!(out, "\nhistogram {name} ({} total):", histogram.total());
            for (bucket, count) in histogram.iter() {
                let _ = writeln!(out, "  {bucket:<width$} {count:>16}");
            }
        }
        if !self.engine_counters.is_empty() {
            let _ = writeln!(out, "\nengine counters ({}):", self.engine);
            for (name, value) in &self.engine_counters {
                let _ = writeln!(out, "  {name:<width$} {value:>16}");
            }
        }
        if !self.timings.is_empty() {
            let _ = writeln!(
                out,
                "\nself-profile (wall clock, excluded from determinism):"
            );
            let _ = writeln!(
                out,
                "  {:<24} {:>10} {:>14} {:>12}",
                "phase", "calls", "total_ms", "ms/call"
            );
            for row in &self.timings {
                let per_call = if row.calls > 0 {
                    row.total_ms / row.calls as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "  {:<24} {:>10} {:>14.3} {:>12.4}",
                    row.phase, row.calls, row.total_ms, per_call,
                );
            }
        }
        out
    }
}

fn require_object<'a>(value: &'a Value, key: &str) -> Result<&'a [(String, Value)], String> {
    value
        .get(key)
        .and_then(Value::as_object)
        .ok_or_else(|| format!("`{key}` is not an object"))
}

fn require_u64(value: &Value, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("`{key}` is not an unsigned integer"))
}

fn require_str<'a>(value: &'a Value, key: &str) -> Result<&'a str, String> {
    value
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("`{key}` is not a string"))
}

fn u64_map(value: &Value, key: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut map = BTreeMap::new();
    for (name, entry) in require_object(value, key)? {
        let count = entry
            .as_u64()
            .ok_or_else(|| format!("counter `{name}` is not an unsigned integer"))?;
        map.insert(name.clone(), count);
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dump() -> MetricsDump {
        let mut dump = MetricsDump {
            schema: METRICS_SCHEMA,
            spec_fingerprint: "0x00000000000004d2".to_string(),
            engine: "full".to_string(),
            ..MetricsDump::default()
        };
        dump.counters.insert("campaign.cells".into(), 24);
        dump.counters.insert("campaign.faults_injected".into(), 7);
        dump.gauges.insert("campaign.load_hit_rate".into(), 0.875);
        let mut histogram = Histogram::new();
        histogram.add("wb", 24);
        dump.histograms
            .insert("campaign.cells_by_platform".into(), histogram);
        dump.engine_counters.insert("trace.replayed".into(), 16);
        dump.timings.push(PhaseTiming {
            phase: "replay".into(),
            calls: 16,
            total_ms: 1.25,
        });
        dump
    }

    #[test]
    fn dump_round_trips_through_json() {
        let dump = sample_dump();
        let parsed = MetricsDump::from_json(&dump.to_json()).expect("round trip");
        assert_eq!(parsed, dump);
    }

    #[test]
    fn counter_section_excludes_wall_clock() {
        let dump = sample_dump();
        let section = dump.counter_section_json();
        assert!(section.contains("campaign.cells"));
        assert!(section.contains("trace.replayed"));
        assert!(!section.contains("total_ms"));
        assert!(!section.contains("timings"));
    }

    #[test]
    fn campaign_section_excludes_engine_specifics() {
        let dump = sample_dump();
        let section = dump.campaign_section_json();
        assert!(section.contains("campaign.cells"));
        assert!(!section.contains("trace.replayed"));
        assert!(!section.contains("\"engine\""));
    }

    #[test]
    fn histogram_buckets_sort_and_sum() {
        let mut histogram = Histogram::new();
        histogram.add("zeta", 2);
        histogram.add("alpha", 3);
        histogram.add("zeta", 1);
        assert_eq!(histogram.total(), 6);
        assert_eq!(histogram.get("zeta"), 3);
        assert_eq!(histogram.get("missing"), 0);
        let order: Vec<&str> = histogram.iter().map(|(name, _)| name).collect();
        assert_eq!(order, vec!["alpha", "zeta"]);
    }

    #[test]
    fn render_mentions_every_section() {
        let text = sample_dump().render();
        assert!(text.contains("counters (deterministic):"));
        assert!(text.contains("self-profile"));
        assert!(text.contains("campaign.cells"));
        assert!(text.contains("replay"));
    }
}

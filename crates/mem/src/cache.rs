//! Set-associative cache with per-word ECC protection.
//!
//! The cache stores real data: every 32-bit word is kept as a
//! [`Codeword`](laec_ecc::Codeword) (data + check bits of the configured
//! code), exactly like the data array + ECC array pair of a hardware cache.
//! Reads run the decoder, record the outcome, and scrub correctable errors in
//! place.  The timing of *when* the check happens (same cycle, extra cycle,
//! extra stage, or LAEC's anticipated check) is the pipeline's business; the
//! cache only answers hit/miss and value/outcome questions.

use laec_ecc::{Codeword, Decoded, EccCode, FlipPlan, Outcome};

use crate::config::{CacheConfig, WritePolicy};
use crate::stats::CacheStats;

/// One cache line: tag, state and the protected words.
#[derive(Debug, Clone)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u32,
    words: Vec<Codeword>,
    /// Bit *i* set ⇔ `words[i]` was produced by `Codeword::encode` and has
    /// not been fault-flipped since.  A pristine codeword provably decodes
    /// to `(data, Clean)` for any valid code, so reads, evictions and
    /// flushes can skip the syndrome computation — the dominant cost of the
    /// simulated hierarchy.  Fault injection clears the bit; scrubs and
    /// writes (which re-encode) set it again.
    pristine: u64,
    last_used: u64,
}

impl Line {
    /// An invalid line.  The word storage stays unallocated until the first
    /// fill: a campaign constructs a fresh `MemorySystem` per grid cell, and
    /// most L2 lines of most cells are never touched, so eager allocation
    /// (~8k vectors per hierarchy) would dominate short runs.
    fn empty() -> Self {
        Line {
            valid: false,
            dirty: false,
            tag: 0,
            words: Vec::new(),
            pristine: 0,
            last_used: 0,
        }
    }

    /// Decodes word `word`, taking the pristine fast path when possible.
    fn decode_word(&self, word: usize, code: &(dyn EccCode + Send + Sync)) -> Decoded {
        if self.pristine & (1u64 << word) != 0 {
            let decoded = Decoded {
                data: self.words[word].data() & code.data_mask(),
                outcome: Outcome::Clean,
            };
            debug_assert_eq!(decoded, self.words[word].decode(code));
            decoded
        } else {
            self.words[word].decode(code)
        }
    }
}

/// Result of a cache word read that hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadHit {
    /// The (corrected, when possible) word value.
    pub value: u32,
    /// ECC decode outcome for this word.
    pub outcome: Outcome,
    /// `true` if the line holding the word is dirty.
    pub dirty: bool,
}

/// A line evicted to make room for a fill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line-aligned base address of the evicted line.
    pub base_address: u32,
    /// The line's words (after ECC correction where possible).
    pub words: Vec<u32>,
    /// `true` if the line was dirty and must be written back.
    pub dirty: bool,
    /// `true` if any word of the line held an uncorrectable error (the
    /// written-back data cannot be trusted).
    pub uncorrectable: bool,
}

/// A set-associative, LRU-replacement cache with ECC-protected words.
///
/// ```
/// use laec_mem::{Cache, CacheConfig};
///
/// let mut cache = Cache::new(CacheConfig::dl1_write_back());
/// assert!(cache.read_word(0x1000).is_none(), "cold cache misses");
/// cache.fill(0x1000, &[1, 2, 3, 4, 5, 6, 7, 8]);
/// let hit = cache.read_word(0x1004).expect("now resident");
/// assert_eq!(hit.value, 2);
/// ```
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    /// All lines, flattened set-major (`lines[set * ways + way]`): one
    /// allocation per cache instead of one per set, which matters because
    /// campaigns construct a fresh hierarchy per grid cell.
    lines: Vec<Line>,
    /// Precomputed address-decomposition geometry.  `CacheConfig::sets()`
    /// re-validates the whole configuration on every call, which is far too
    /// expensive for the per-access hot path.
    offset_bits: u32,
    index_bits: u32,
    set_mask: u32,
    way_count: usize,
    code: Box<dyn EccCode + Send + Sync>,
    stats: CacheStats,
    access_counter: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CacheConfig::validate`].
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        config.validate().expect("invalid cache geometry");
        let sets = config.sets();
        let lines = (0..sets * config.ways).map(|_| Line::empty()).collect();
        Cache {
            config,
            lines,
            offset_bits: config.line_bytes.trailing_zeros(),
            index_bits: sets.trailing_zeros(),
            set_mask: sets - 1,
            way_count: config.ways as usize,
            code: config.protection.instantiate(),
            stats: CacheStats::new(),
            access_counter: 0,
        }
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics (e.g. after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    fn offset_bits(&self) -> u32 {
        self.offset_bits
    }

    fn index_bits(&self) -> u32 {
        self.index_bits
    }

    /// Line-aligned base address of the line containing `address`.
    #[must_use]
    pub fn line_base(&self, address: u32) -> u32 {
        address & !(self.config.line_bytes - 1)
    }

    fn set_index(&self, address: u32) -> usize {
        ((address >> self.offset_bits) & self.set_mask) as usize
    }

    fn tag(&self, address: u32) -> u32 {
        address >> (self.offset_bits + self.index_bits)
    }

    fn word_index(&self, address: u32) -> usize {
        ((address & (self.config.line_bytes - 1)) >> 2) as usize
    }

    fn ways(&self) -> usize {
        self.way_count
    }

    /// The lines of one set, as a flat-index range.
    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.ways()..(set + 1) * self.ways()
    }

    fn find_way(&self, address: u32) -> Option<usize> {
        let set = self.set_index(address);
        let tag = self.tag(address);
        self.lines[self.set_range(set)]
            .iter()
            .position(|line| line.valid && line.tag == tag)
    }

    /// `true` if the word at `address` is resident, without disturbing LRU or
    /// statistics.
    #[must_use]
    pub fn probe(&self, address: u32) -> bool {
        self.find_way(address).is_some()
    }

    /// Reads the (decoded) word at `address` without updating LRU state,
    /// statistics or scrubbing — a debug/result-checking view.
    #[must_use]
    pub fn peek_word(&self, address: u32) -> Option<u32> {
        let way = self.find_way(address)?;
        let set = self.set_index(address);
        let word = self.word_index(address);
        let decoded = self.lines[set * self.ways() + way].decode_word(word, self.code.as_ref());
        Some(decoded.data as u32)
    }

    /// Reads the aligned 32-bit word at `address`.
    ///
    /// Returns `None` on a miss (recorded).  On a hit the stored codeword is
    /// decoded with the configured code; correctable errors are scrubbed in
    /// place and the outcome is recorded in the statistics.
    pub fn read_word(&mut self, address: u32) -> Option<ReadHit> {
        self.access_counter += 1;
        let Some(way) = self.find_way(address) else {
            self.stats.read_misses += 1;
            return None;
        };
        self.stats.read_hits += 1;
        let set = self.set_index(address);
        let word = self.word_index(address);
        let counter = self.access_counter;
        let index = set * self.ways() + way;
        let line = &mut self.lines[index];
        line.last_used = counter;
        let decoded = line.decode_word(word, self.code.as_ref());
        self.stats.ecc.record(decoded.outcome);
        if decoded.outcome.is_usable() && decoded.outcome.is_error() {
            // Scrub: rewrite the corrected word so the error does not linger.
            line.words[word] = Codeword::encode(self.code.as_ref(), decoded.data);
            line.pristine |= 1u64 << word;
        }
        Some(ReadHit {
            value: decoded.data as u32,
            outcome: decoded.outcome,
            dirty: line.dirty,
        })
    }

    /// Writes bytes of the aligned word at `address` selected by `byte_mask`
    /// (bit *i* of the mask enables byte *i*).  Returns `false` on a miss
    /// (recorded); the caller decides whether to allocate
    /// ([`Cache::fill`]) or forward the write, according to the policy.
    ///
    /// Write-back caches mark the line dirty; write-through caches leave the
    /// dirty bit clear because the caller forwards the store to the next
    /// level.
    pub fn write_word_masked(&mut self, address: u32, value: u32, byte_mask: u8) -> bool {
        self.access_counter += 1;
        let Some(way) = self.find_way(address) else {
            self.stats.write_misses += 1;
            return false;
        };
        self.stats.write_hits += 1;
        let set = self.set_index(address);
        let word = self.word_index(address);
        let counter = self.access_counter;
        let dirty_on_write = self.config.write_policy == WritePolicy::WriteBack;
        let mask = expand_byte_mask(byte_mask);
        let index = set * self.ways() + way;
        let line = &mut self.lines[index];
        line.last_used = counter;
        let decoded = line.decode_word(word, self.code.as_ref());
        self.stats.ecc.record(decoded.outcome);
        let old = decoded.data as u32;
        let merged = (old & !mask) | (value & mask);
        line.words[word] = Codeword::encode(self.code.as_ref(), u64::from(merged));
        line.pristine |= 1u64 << word;
        if dirty_on_write {
            line.dirty = true;
        }
        true
    }

    /// Writes a full aligned word (all bytes enabled).
    pub fn write_word(&mut self, address: u32, value: u32) -> bool {
        self.write_word_masked(address, value, 0xF)
    }

    /// Reads `count` consecutive words starting at the line-aligned `base`,
    /// all within one line — the refill fast path.  Statistics, LRU state
    /// and scrubbing end up exactly as `count` calls to
    /// [`Cache::read_word`] would leave them, but the tag is matched once.
    /// Returns `None` (nothing recorded) when the line is not resident or
    /// the request extends past it (a caller line larger than ours); the
    /// caller falls back to per-word reads.
    pub fn read_line_words(&mut self, base: u32, count: u32) -> Option<Vec<u32>> {
        let way = self.find_way(base)?;
        let set = self.set_index(base);
        let first = self.word_index(base);
        if first + count as usize > self.config.words_per_line() as usize {
            return None;
        }
        self.access_counter += u64::from(count);
        self.stats.read_hits += u64::from(count);
        let counter = self.access_counter;
        let code = self.code.as_ref();
        let index = set * self.ways() + way;
        let line = &mut self.lines[index];
        line.last_used = counter;
        let mut out = Vec::with_capacity(count as usize);
        for word in first..first + count as usize {
            let decoded = line.decode_word(word, code);
            self.stats.ecc.record(decoded.outcome);
            if decoded.outcome.is_usable() && decoded.outcome.is_error() {
                line.words[word] = Codeword::encode(code, decoded.data);
                line.pristine |= 1u64 << word;
            }
            out.push(decoded.data as u32);
        }
        Some(out)
    }

    /// Fills the line containing `address` with `line_words` (one entry per
    /// 32-bit word of the line), evicting the LRU way if necessary.
    ///
    /// Returns the evicted line when one had to be displaced.
    ///
    /// # Panics
    ///
    /// Panics if `line_words` does not match the configured line size.
    pub fn fill(&mut self, address: u32, line_words: &[u32]) -> Option<EvictedLine> {
        assert_eq!(
            line_words.len(),
            self.config.words_per_line() as usize,
            "fill data must cover exactly one line"
        );
        self.access_counter += 1;
        self.stats.fills += 1;
        let set = self.set_index(address);
        let tag = self.tag(address);
        let counter = self.access_counter;

        // Prefer an invalid way; otherwise evict the LRU way.
        let way = {
            let lines = &self.lines[self.set_range(set)];
            lines
                .iter()
                .position(|line| !line.valid)
                .unwrap_or_else(|| {
                    lines
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, line)| line.last_used)
                        .map(|(w, _)| w)
                        .expect("at least one way")
                })
        };

        let evicted = {
            let line = &self.lines[set * self.ways() + way];
            if line.valid {
                let base = self.reconstruct_base(set, line.tag);
                let mut words = Vec::with_capacity(line.words.len());
                let mut uncorrectable = false;
                for word in 0..line.words.len() {
                    let decoded = line.decode_word(word, self.code.as_ref());
                    if !decoded.outcome.is_usable() {
                        uncorrectable = true;
                    }
                    words.push(decoded.data as u32);
                }
                Some(EvictedLine {
                    base_address: base,
                    words,
                    dirty: line.dirty,
                    uncorrectable,
                })
            } else {
                None
            }
        };
        if let Some(evicted) = &evicted {
            self.stats.evictions += 1;
            if evicted.dirty {
                self.stats.writebacks += 1;
            }
        }

        let code = self.code.as_ref();
        let index = set * self.ways() + way;
        let line = &mut self.lines[index];
        line.valid = true;
        line.dirty = false;
        line.tag = tag;
        line.last_used = counter;
        // `clear` + `extend` keeps the allocation across refills (and makes
        // the first fill the line's only allocation).
        line.words.clear();
        line.words.extend(
            line_words
                .iter()
                .map(|&value| Codeword::encode(code, u64::from(value))),
        );
        line.pristine = pristine_mask(line.words.len());
        evicted.filter(|e| e.dirty || e.uncorrectable)
    }

    /// Invalidates the line containing `address` (no writeback), returning
    /// `true` if it was resident.  Used by the WT+parity recovery path: a
    /// detected parity error simply drops the line and refetches it.
    pub fn invalidate(&mut self, address: u32) -> bool {
        if let Some(way) = self.find_way(address) {
            let set = self.set_index(address);
            let index = set * self.ways() + way;
            self.lines[index].valid = false;
            self.lines[index].dirty = false;
            true
        } else {
            false
        }
    }

    /// Marks the line containing `address` clean (after an explicit
    /// writeback), returning `true` if it was resident.
    pub fn clean(&mut self, address: u32) -> bool {
        if let Some(way) = self.find_way(address) {
            let set = self.set_index(address);
            let index = set * self.ways() + way;
            self.lines[index].dirty = false;
            true
        } else {
            false
        }
    }

    /// Applies a bit-flip plan to the stored codeword at `address`,
    /// returning `true` if the word was resident (faults cannot be injected
    /// into non-resident lines).
    pub fn inject_fault(&mut self, address: u32, plan: &FlipPlan) -> bool {
        let Some(way) = self.find_way(address) else {
            return false;
        };
        let set = self.set_index(address);
        let word = self.word_index(address);
        let index = set * self.ways() + way;
        plan.apply(&mut self.lines[index].words[word]);
        self.lines[index].pristine &= !(1u64 << word);
        true
    }

    /// Addresses of all currently resident words (used by fault campaigns to
    /// pick a strike location among live data).
    #[must_use]
    pub fn resident_word_addresses(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for (set_index, set) in self.lines.chunks(self.ways()).enumerate() {
            for line in set {
                if line.valid {
                    let base = self.reconstruct_base(set_index, line.tag);
                    for word in 0..self.config.words_per_line() {
                        out.push(base + 4 * word);
                    }
                }
            }
        }
        out
    }

    /// Number of dirty lines currently resident.
    #[must_use]
    pub fn dirty_lines(&self) -> usize {
        self.lines
            .iter()
            .filter(|line| line.valid && line.dirty)
            .count()
    }

    /// Number of valid lines currently resident.
    #[must_use]
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|line| line.valid).count()
    }

    /// Writes back and returns every dirty line (used at program end so the
    /// memory image can be compared across schemes).
    pub fn flush_dirty(&mut self) -> Vec<EvictedLine> {
        let mut out = Vec::new();
        let ways = self.ways();
        for index in 0..self.lines.len() {
            let set_index = index / ways;
            {
                let (valid, dirty, tag) = {
                    let line = &self.lines[index];
                    (line.valid, line.dirty, line.tag)
                };
                if valid && dirty {
                    let base = self.reconstruct_base(set_index, tag);
                    let mut words = Vec::with_capacity(self.config.words_per_line() as usize);
                    let mut uncorrectable = false;
                    for word in 0..self.lines[index].words.len() {
                        let decoded = self.lines[index].decode_word(word, self.code.as_ref());
                        if !decoded.outcome.is_usable() {
                            uncorrectable = true;
                        }
                        words.push(decoded.data as u32);
                    }
                    self.lines[index].dirty = false;
                    self.stats.writebacks += 1;
                    out.push(EvictedLine {
                        base_address: base,
                        words,
                        dirty: true,
                        uncorrectable,
                    });
                }
            }
        }
        out
    }

    fn reconstruct_base(&self, set_index: usize, tag: u32) -> u32 {
        (tag << (self.offset_bits() + self.index_bits()))
            | ((set_index as u32) << self.offset_bits())
    }
}

/// All-pristine mask for a line of `words` words (the `pristine` bitmask is
/// a u64, which `CacheConfig::validate`'s line-size bounds keep sufficient).
fn pristine_mask(words: usize) -> u64 {
    debug_assert!(words <= 64, "pristine bitmask covers at most 64 words");
    if words >= 64 {
        u64::MAX
    } else {
        (1u64 << words) - 1
    }
}

/// Expands a 4-bit byte mask into a 32-bit bit mask.
fn expand_byte_mask(byte_mask: u8) -> u32 {
    let mut mask = 0u32;
    for byte in 0..4 {
        if byte_mask & (1 << byte) != 0 {
            mask |= 0xFFu32 << (8 * byte);
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AllocatePolicy;
    use laec_ecc::CodeKind;

    fn small_config() -> CacheConfig {
        // 2 sets x 2 ways x 16 B lines = 64 B: easy to force evictions.
        CacheConfig {
            size_bytes: 64,
            ways: 2,
            line_bytes: 16,
            write_policy: WritePolicy::WriteBack,
            allocate_policy: AllocatePolicy::WriteAllocate,
            protection: CodeKind::Hsiao39_32,
        }
    }

    fn line(start: u32) -> Vec<u32> {
        (0..4).map(|i| start + i).collect()
    }

    #[test]
    fn address_decomposition() {
        let cache = Cache::new(CacheConfig::dl1_write_back());
        // 32 B lines -> 5 offset bits; 128 sets -> 7 index bits.
        assert_eq!(cache.line_base(0x0000_1234), 0x0000_1220);
        assert_eq!(cache.set_index(0x0000_1234), (0x1234 >> 5) & 127);
        assert_eq!(cache.tag(0x0000_1234), 0x1234 >> 12);
        assert_eq!(cache.word_index(0x0000_1234), 5);
    }

    #[test]
    fn cold_miss_then_hit_after_fill() {
        let mut cache = Cache::new(small_config());
        assert!(!cache.probe(0x100));
        assert!(cache.read_word(0x100).is_none());
        assert_eq!(cache.stats().read_misses, 1);
        cache.fill(0x100, &line(10));
        assert!(cache.probe(0x100));
        let hit = cache.read_word(0x108).unwrap();
        assert_eq!(hit.value, 12);
        assert_eq!(hit.outcome, Outcome::Clean);
        assert!(!hit.dirty);
        assert_eq!(cache.stats().read_hits, 1);
        assert_eq!(cache.valid_lines(), 1);
    }

    #[test]
    fn writes_set_dirty_only_for_write_back() {
        let mut wb = Cache::new(small_config());
        wb.fill(0x100, &line(0));
        assert!(wb.write_word(0x104, 99));
        assert_eq!(wb.read_word(0x104).unwrap().value, 99);
        assert_eq!(wb.dirty_lines(), 1);

        let mut wt = Cache::new(CacheConfig {
            write_policy: WritePolicy::WriteThrough,
            allocate_policy: AllocatePolicy::NoWriteAllocate,
            protection: CodeKind::EvenParity32,
            ..small_config()
        });
        wt.fill(0x100, &line(0));
        assert!(wt.write_word(0x104, 99));
        assert_eq!(wt.dirty_lines(), 0);
    }

    #[test]
    fn masked_writes_merge_bytes() {
        let mut cache = Cache::new(small_config());
        cache.fill(0x100, &[0x1111_1111; 4]);
        assert!(cache.write_word_masked(0x100, 0x0000_00AA, 0b0001));
        assert_eq!(cache.read_word(0x100).unwrap().value, 0x1111_11AA);
        assert!(cache.write_word_masked(0x100, 0xBBBB_0000, 0b1100));
        assert_eq!(cache.read_word(0x100).unwrap().value, 0xBBBB_11AA);
    }

    #[test]
    fn write_miss_is_recorded_and_not_allocated() {
        let mut cache = Cache::new(small_config());
        assert!(!cache.write_word(0x500, 1));
        assert_eq!(cache.stats().write_misses, 1);
        assert!(!cache.probe(0x500));
    }

    #[test]
    fn lru_eviction_returns_dirty_victim() {
        let mut cache = Cache::new(small_config());
        // Set 0 holds lines with base addresses that are multiples of 32 (16 B
        // lines, 2 sets): 0x00, 0x20, 0x40 all map to set 0.
        cache.fill(0x00, &line(1));
        cache.fill(0x20, &line(2));
        cache.write_word(0x00, 0xAB); // make way-0 line dirty and MRU
        let evicted = cache.fill(0x40, &line(3));
        // LRU is the 0x20 line (clean): eviction returns None for clean lines.
        assert!(evicted.is_none());
        assert!(cache.probe(0x00) && cache.probe(0x40) && !cache.probe(0x20));
        // Touch 0x40 so 0x00 becomes LRU, then evict it: dirty writeback.
        cache.read_word(0x40).unwrap();
        let evicted = cache.fill(0x20, &line(4)).expect("dirty victim");
        assert_eq!(evicted.base_address, 0x00);
        assert!(evicted.dirty);
        assert_eq!(evicted.words[0], 0xAB);
        assert_eq!(cache.stats().writebacks, 1);
    }

    #[test]
    fn invalidate_and_clean() {
        let mut cache = Cache::new(small_config());
        cache.fill(0x100, &line(5));
        cache.write_word(0x100, 7);
        assert_eq!(cache.dirty_lines(), 1);
        assert!(cache.clean(0x100));
        assert_eq!(cache.dirty_lines(), 0);
        assert!(cache.invalidate(0x100));
        assert!(!cache.probe(0x100));
        assert!(!cache.invalidate(0x100));
        assert!(!cache.clean(0x100));
    }

    #[test]
    fn injected_single_bit_fault_is_corrected_and_scrubbed() {
        let mut cache = Cache::new(small_config());
        cache.fill(0x100, &[0xCAFE_F00D; 4]);
        assert!(cache.inject_fault(0x104, &FlipPlan::single_data(9)));
        let hit = cache.read_word(0x104).unwrap();
        assert_eq!(hit.outcome, Outcome::CorrectedSingle { bit: 9 });
        assert_eq!(hit.value, 0xCAFE_F00D);
        // The scrub rewrote the word: a second read is clean.
        let hit = cache.read_word(0x104).unwrap();
        assert_eq!(hit.outcome, Outcome::Clean);
        assert_eq!(cache.stats().ecc.corrected_data, 1);
    }

    #[test]
    fn injected_double_fault_is_flagged_uncorrectable() {
        let mut cache = Cache::new(small_config());
        cache.fill(0x100, &[0x0101_0101; 4]);
        cache.inject_fault(0x100, &FlipPlan::double_data(3, 17));
        let hit = cache.read_word(0x100).unwrap();
        assert_eq!(hit.outcome, Outcome::DetectedDouble);
        assert!(!cache.stats().ecc.is_safe());
    }

    #[test]
    fn fault_injection_needs_resident_data() {
        let mut cache = Cache::new(small_config());
        assert!(!cache.inject_fault(0x100, &FlipPlan::single_data(0)));
        cache.fill(0x100, &line(0));
        assert_eq!(
            cache.resident_word_addresses(),
            vec![0x100, 0x104, 0x108, 0x10C]
        );
    }

    #[test]
    fn parity_cache_detects_but_does_not_correct() {
        let mut cache = Cache::new(CacheConfig {
            protection: CodeKind::EvenParity32,
            ..small_config()
        });
        cache.fill(0x100, &[7; 4]);
        cache.inject_fault(0x100, &FlipPlan::single_data(0));
        let hit = cache.read_word(0x100).unwrap();
        assert_eq!(hit.outcome, Outcome::DetectedUncorrectable);
    }

    #[test]
    fn flush_dirty_writes_back_everything() {
        let mut cache = Cache::new(small_config());
        cache.fill(0x00, &line(0));
        cache.fill(0x10, &line(4));
        cache.write_word(0x00, 100);
        cache.write_word(0x10, 200);
        let flushed = cache.flush_dirty();
        assert_eq!(flushed.len(), 2);
        assert_eq!(cache.dirty_lines(), 0);
        let bases: Vec<u32> = flushed.iter().map(|e| e.base_address).collect();
        assert!(bases.contains(&0x00) && bases.contains(&0x10));
    }

    #[test]
    fn unprotected_cache_works_without_check_bits() {
        let mut cache = Cache::new(CacheConfig {
            protection: CodeKind::None,
            ..small_config()
        });
        cache.fill(0x100, &[42; 4]);
        // An injected flip goes completely unnoticed: silent data corruption,
        // the failure mode the paper's ECC schemes exist to prevent.
        cache.inject_fault(0x100, &FlipPlan::single_data(0));
        let hit = cache.read_word(0x100).unwrap();
        assert_eq!(hit.outcome, Outcome::Clean);
        assert_eq!(hit.value, 43);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut cache = Cache::new(small_config());
        cache.read_word(0x0);
        assert_eq!(cache.stats().read_misses, 1);
        cache.reset_stats();
        assert_eq!(cache.stats().read_misses, 0);
    }

    #[test]
    #[should_panic(expected = "exactly one line")]
    fn fill_with_wrong_word_count_panics() {
        let mut cache = Cache::new(small_config());
        cache.fill(0x100, &[1, 2]);
    }

    #[test]
    fn read_line_words_matches_per_word_reads_and_rejects_oversized_requests() {
        let mut batched = Cache::new(small_config());
        let mut serial = Cache::new(small_config());
        batched.fill(0x100, &line(7));
        serial.fill(0x100, &line(7));
        batched.inject_fault(0x104, &FlipPlan::single_data(3));
        serial.inject_fault(0x104, &FlipPlan::single_data(3));
        let words = batched.read_line_words(0x100, 4).expect("resident");
        let per_word: Vec<u32> = (0..4)
            .map(|i| serial.read_word(0x100 + 4 * i).unwrap().value)
            .collect();
        assert_eq!(words, per_word);
        assert_eq!(batched.stats(), serial.stats(), "identical counters");
        // A request larger than the line (a caller with bigger lines than
        // ours) must fall back, not index out of bounds.
        let stats_before = *batched.stats();
        assert_eq!(batched.read_line_words(0x100, 8), None);
        assert_eq!(batched.read_line_words(0x108, 4), None, "past the end");
        assert_eq!(*batched.stats(), stats_before, "nothing recorded");
        assert_eq!(batched.read_line_words(0x400, 4), None, "not resident");
    }
}

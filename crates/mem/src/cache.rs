//! Set-associative cache with per-word ECC protection.
//!
//! The cache stores real data: every 32-bit word is kept as a
//! [`Codeword`] (data + check bits of the configured
//! code), exactly like the data array + ECC array pair of a hardware cache.
//! Reads run the decoder, record the outcome, and scrub correctable errors in
//! place.  The timing of *when* the check happens (same cycle, extra cycle,
//! extra stage, or LAEC's anticipated check) is the pipeline's business; the
//! cache only answers hit/miss and value/outcome questions.

use laec_ecc::{Codeword, Decoded, EccCode, ErrorInjector, FlipPlan, Outcome};

use crate::coherence::{LineState, ProtocolKind, SnoopResult};
use crate::config::{CacheConfig, WritePolicy};
use crate::fault::FaultTarget;
use crate::forensics::{ActivationKind, CacheEvent, FaultOutcome};
use crate::stats::CacheStats;

/// One cache line: tag, coherence state and the protected words.
#[derive(Debug, Clone)]
struct Line {
    /// Coherence state; `Invalid` ⇔ the old "not valid", `Modified` ⇔ the
    /// old "valid + dirty".  Uniprocessor fills produce `Exclusive`.
    state: LineState,
    tag: u32,
    words: Vec<Codeword>,
    /// Bit *i* set ⇔ `words[i]` was produced by `Codeword::encode` and has
    /// not been fault-flipped since.  A pristine codeword provably decodes
    /// to `(data, Clean)` for any valid code, so reads, evictions and
    /// flushes can skip the syndrome computation — the dominant cost of the
    /// simulated hierarchy.  Fault injection clears the bit; scrubs and
    /// writes (which re-encode) set it again.
    pristine: u64,
    last_used: u64,
}

impl Line {
    /// An invalid line.  The word storage stays unallocated until the first
    /// fill: a campaign constructs a fresh `MemorySystem` per grid cell, and
    /// most L2 lines of most cells are never touched, so eager allocation
    /// (~8k vectors per hierarchy) would dominate short runs.
    fn empty() -> Self {
        Line {
            state: LineState::Invalid,
            tag: 0,
            words: Vec::new(),
            pristine: 0,
            last_used: 0,
        }
    }

    /// Decodes word `word`, taking the pristine fast path when possible.
    fn decode_word(&self, word: usize, code: &(dyn EccCode + Send + Sync)) -> Decoded {
        if self.pristine & (1u64 << word) != 0 {
            let decoded = Decoded {
                data: self.words[word].data() & code.data_mask(),
                outcome: Outcome::Clean,
            };
            debug_assert_eq!(decoded, self.words[word].decode(code));
            decoded
        } else {
            self.words[word].decode(code)
        }
    }
}

/// Result of a cache word read that hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadHit {
    /// The (corrected, when possible) word value.
    pub value: u32,
    /// ECC decode outcome for this word.
    pub outcome: Outcome,
    /// `true` if the line holding the word is dirty.
    pub dirty: bool,
}

/// A line evicted to make room for a fill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line-aligned base address of the evicted line.
    pub base_address: u32,
    /// The line's words (after ECC correction where possible).
    pub words: Vec<u32>,
    /// `true` if the line was dirty and must be written back.
    pub dirty: bool,
    /// `true` if any word of the line held an uncorrectable error (the
    /// written-back data cannot be trusted).
    pub uncorrectable: bool,
}

/// The true (pre-corruption) metadata of a line struck by a metadata fault
/// — a ground-truth oracle used only to *classify* the consequences, never
/// to influence behaviour (behaviour always follows the stored, possibly
/// corrupted bits, exactly like hardware would).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MetaCorruption {
    /// Flat line index (`set * ways + way`).
    index: usize,
    /// The tag the line carried before any tag-bit strike.
    true_tag: u32,
    /// `true` if the line architecturally held dirty data when struck.
    truly_dirty: bool,
}

/// A set-associative, LRU-replacement cache with ECC-protected words.
///
/// ```
/// use laec_mem::{Cache, CacheConfig};
///
/// let mut cache = Cache::new(CacheConfig::dl1_write_back());
/// assert!(cache.read_word(0x1000).is_none(), "cold cache misses");
/// cache.fill(0x1000, &[1, 2, 3, 4, 5, 6, 7, 8]);
/// let hit = cache.read_word(0x1004).expect("now resident");
/// assert_eq!(hit.value, 2);
/// ```
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    /// All lines, flattened set-major (`lines[set * ways + way]`): one
    /// allocation per cache instead of one per set, which matters because
    /// campaigns construct a fresh hierarchy per grid cell.
    lines: Vec<Line>,
    /// Precomputed address-decomposition geometry.  `CacheConfig::sets()`
    /// re-validates the whole configuration on every call, which is far too
    /// expensive for the per-access hot path.
    offset_bits: u32,
    index_bits: u32,
    set_mask: u32,
    way_count: usize,
    code: Box<dyn EccCode + Send + Sync>,
    /// Which coherence decision table governs this cache's snoop responses
    /// and the width of its state metadata.  Defaults to MESI; a
    /// uniprocessor never takes a protocol-dependent transition, so the
    /// field only matters once a coherence controller drives the cache.
    protocol: ProtocolKind,
    stats: CacheStats,
    access_counter: u64,
    /// Ground-truth records for lines whose metadata (coherence state or tag
    /// bits) was fault-flipped; empty on fault-free runs, so every check is
    /// a single `is_empty` branch.
    corrupted: Vec<MetaCorruption>,
    /// Metadata faults injected (state or tag bits).
    meta_faults_injected: u64,
    /// Dirty data dropped without a writeback because corrupted metadata
    /// hid the dirtiness or re-addressed the line (silent data loss).
    lost_writebacks: u64,
    /// Reads served wrong data because of corrupted metadata: an aliased
    /// tag-hit, or a refetch of stale lower-level data while the newest copy
    /// was hidden by the corruption (silent data corruption).
    stale_reads: u64,
    /// Forensics journal: strike and consequence events in program order,
    /// drained by the owning `MemorySystem` after every access.  Only
    /// populated when `journal_enabled` (set by forensics); every push site
    /// is behind that flag so disabled runs pay a single branch.
    journal: Vec<CacheEvent>,
    journal_enabled: bool,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CacheConfig::validate`].
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        // laec-lint: allow(panic-in-library) -- documented panic: geometry
        // errors are construction-time configuration bugs, rejected before
        // any simulation state exists.
        config.validate().expect("invalid cache geometry");
        let sets = config.sets();
        let lines = (0..sets * config.ways).map(|_| Line::empty()).collect();
        Cache {
            config,
            lines,
            offset_bits: config.line_bytes.trailing_zeros(),
            index_bits: sets.trailing_zeros(),
            set_mask: sets - 1,
            way_count: config.ways as usize,
            code: config.protection.instantiate(),
            protocol: ProtocolKind::Mesi,
            stats: CacheStats::new(),
            access_counter: 0,
            corrupted: Vec::new(),
            meta_faults_injected: 0,
            lost_writebacks: 0,
            stale_reads: 0,
            journal: Vec::new(),
            journal_enabled: false,
        }
    }

    /// Turns on the forensics event journal (irreversible for the cache's
    /// lifetime; campaigns construct a fresh hierarchy per cell).
    pub(crate) fn enable_journal(&mut self) {
        self.journal_enabled = true;
    }

    /// Takes the journalled events accumulated since the last drain.
    pub(crate) fn drain_journal(&mut self) -> Vec<CacheEvent> {
        std::mem::take(&mut self.journal)
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics (e.g. after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    /// The coherence protocol governing this cache's snoop responses.
    #[must_use]
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// Selects the coherence protocol (the SMP controller sets this on
    /// every DL1 it builds; the default is [`ProtocolKind::Mesi`]).
    pub fn set_protocol(&mut self, protocol: ProtocolKind) {
        self.protocol = protocol;
    }

    fn offset_bits(&self) -> u32 {
        self.offset_bits
    }

    fn index_bits(&self) -> u32 {
        self.index_bits
    }

    /// Line-aligned base address of the line containing `address`.
    #[must_use]
    pub fn line_base(&self, address: u32) -> u32 {
        address & !(self.config.line_bytes - 1)
    }

    fn set_index(&self, address: u32) -> usize {
        ((address >> self.offset_bits) & self.set_mask) as usize
    }

    fn tag(&self, address: u32) -> u32 {
        address >> (self.offset_bits + self.index_bits)
    }

    fn word_index(&self, address: u32) -> usize {
        ((address & (self.config.line_bytes - 1)) >> 2) as usize
    }

    fn ways(&self) -> usize {
        self.way_count
    }

    /// The lines of one set, as a flat-index range.
    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.ways()..(set + 1) * self.ways()
    }

    fn find_way(&self, address: u32) -> Option<usize> {
        let set = self.set_index(address);
        let tag = self.tag(address);
        self.lines[self.set_range(set)]
            .iter()
            .position(|line| line.state.is_valid() && line.tag == tag)
    }

    /// `true` if the word at `address` is resident, without disturbing LRU or
    /// statistics.
    #[must_use]
    pub fn probe(&self, address: u32) -> bool {
        self.find_way(address).is_some()
    }

    /// Reads the (decoded) word at `address` without updating LRU state,
    /// statistics or scrubbing — a debug/result-checking view.
    #[must_use]
    pub fn peek_word(&self, address: u32) -> Option<u32> {
        self.probe_decoded(address).map(|(value, _)| value)
    }

    /// Decoded value and ECC outcome of the word at `address`, without
    /// disturbing LRU state, statistics or scrubbing.  The forensics layer
    /// uses this to observe a struck word exactly as the next access would,
    /// before a destructive operation (store merge, eviction) consumes it.
    #[must_use]
    pub fn probe_decoded(&self, address: u32) -> Option<(u32, Outcome)> {
        let way = self.find_way(address)?;
        let set = self.set_index(address);
        let word = self.word_index(address);
        let decoded = self.lines[set * self.ways() + way].decode_word(word, self.code.as_ref());
        Some((decoded.data as u32, decoded.outcome))
    }

    /// Base address of the valid line a [`Cache::fill`] at `address` would
    /// displace, or `None` when an invalid way absorbs the fill.  Read-only
    /// twin of the victim selection inside `fill` (keep the two in sync);
    /// lets the forensics layer classify faults in the victim *before* the
    /// eviction decodes and discards it.
    #[must_use]
    pub fn victim_probe(&self, address: u32) -> Option<u32> {
        let set = self.set_index(address);
        let lines = &self.lines[self.set_range(set)];
        if lines.iter().any(|line| !line.state.is_valid()) {
            return None;
        }
        lines
            .iter()
            .enumerate()
            .min_by_key(|(_, line)| line.last_used)
            .map(|(way, _)| self.reconstruct_base(set, lines[way].tag))
    }

    /// Reads the aligned 32-bit word at `address`.
    ///
    /// Returns `None` on a miss (recorded).  On a hit the stored codeword is
    /// decoded with the configured code; correctable errors are scrubbed in
    /// place and the outcome is recorded in the statistics.
    pub fn read_word(&mut self, address: u32) -> Option<ReadHit> {
        self.access_counter += 1;
        let Some(way) = self.find_way(address) else {
            self.stats.read_misses += 1;
            if !self.corrupted.is_empty() {
                self.record_shadowed_miss(address);
            }
            return None;
        };
        let set = self.set_index(address);
        if !self.corrupted.is_empty() {
            let index = set * self.ways() + way;
            if let Some(record) = self.corrupted.iter().find(|r| r.index == index) {
                if record.true_tag != self.lines[index].tag {
                    // The hit only happened because the stored tag was
                    // flipped onto this address: the data belongs elsewhere.
                    self.stale_reads += 1;
                    if self.journal_enabled {
                        let base = self.reconstruct_base(set, record.true_tag);
                        self.journal.push(CacheEvent::MetaOutcome {
                            base,
                            outcome: FaultOutcome::StaleMetadataRead,
                            activation: Some(ActivationKind::Read),
                        });
                    }
                }
            }
        }
        self.stats.read_hits += 1;
        let word = self.word_index(address);
        let counter = self.access_counter;
        let index = set * self.ways() + way;
        let line = &mut self.lines[index];
        line.last_used = counter;
        let decoded = line.decode_word(word, self.code.as_ref());
        self.stats.ecc.record(decoded.outcome);
        if decoded.outcome.is_corrected() {
            // Scrub: rewrite the corrected word so the error does not linger.
            line.words[word] = Codeword::encode(self.code.as_ref(), decoded.data);
            line.pristine |= 1u64 << word;
        }
        Some(ReadHit {
            value: decoded.data as u32,
            outcome: decoded.outcome,
            dirty: line.state.is_dirty(),
        })
    }

    /// Bookkeeping for a read miss while metadata corruptions are live: if
    /// the line that *should* have matched is resident under a flipped tag
    /// and architecturally dirty, the refetch from below returns stale data.
    fn record_shadowed_miss(&mut self, address: u32) {
        let set = self.set_index(address);
        let tag = self.tag(address);
        let range = self.set_range(set);
        for record in &self.corrupted {
            if range.contains(&record.index)
                && record.true_tag == tag
                && self.lines[record.index].tag != tag
                && self.lines[record.index].state.is_valid()
                && record.truly_dirty
            {
                self.stale_reads += 1;
                if self.journal_enabled {
                    let base = self.reconstruct_base(set, record.true_tag);
                    self.journal.push(CacheEvent::MetaOutcome {
                        base,
                        outcome: FaultOutcome::StaleMetadataRead,
                        activation: Some(ActivationKind::Read),
                    });
                }
                return;
            }
        }
    }

    /// Writes bytes of the aligned word at `address` selected by `byte_mask`
    /// (bit *i* of the mask enables byte *i*).  Returns `false` on a miss
    /// (recorded); the caller decides whether to allocate
    /// ([`Cache::fill`]) or forward the write, according to the policy.
    ///
    /// Write-back caches mark the line dirty; write-through caches leave the
    /// dirty bit clear because the caller forwards the store to the next
    /// level.
    pub fn write_word_masked(&mut self, address: u32, value: u32, byte_mask: u8) -> bool {
        self.access_counter += 1;
        let Some(way) = self.find_way(address) else {
            self.stats.write_misses += 1;
            return false;
        };
        self.stats.write_hits += 1;
        let set = self.set_index(address);
        let word = self.word_index(address);
        let counter = self.access_counter;
        let dirty_on_write = self.config.write_policy == WritePolicy::WriteBack;
        let mask = expand_byte_mask(byte_mask);
        let index = set * self.ways() + way;
        let line = &mut self.lines[index];
        line.last_used = counter;
        let decoded = line.decode_word(word, self.code.as_ref());
        self.stats.ecc.record(decoded.outcome);
        let old = decoded.data as u32;
        let merged = (old & !mask) | (value & mask);
        line.words[word] = Codeword::encode(self.code.as_ref(), u64::from(merged));
        line.pristine |= 1u64 << word;
        if dirty_on_write {
            line.state = LineState::Modified;
            if !self.corrupted.is_empty() {
                // A state-only corruption (tag intact) is healed by the
                // write: the line is dirty again and will be written back.
                let tag = self.lines[index].tag;
                if self.journal_enabled {
                    let ways = self.ways();
                    for record in &self.corrupted {
                        if record.index == index && record.true_tag == tag {
                            let base = self.reconstruct_base(record.index / ways, record.true_tag);
                            self.journal.push(CacheEvent::MetaOutcome {
                                base,
                                outcome: FaultOutcome::Masked,
                                activation: None,
                            });
                        }
                    }
                }
                self.corrupted
                    .retain(|r| r.index != index || r.true_tag != tag);
            }
        }
        true
    }

    /// Writes a full aligned word (all bytes enabled).
    pub fn write_word(&mut self, address: u32, value: u32) -> bool {
        self.write_word_masked(address, value, 0xF)
    }

    /// Reads `count` consecutive words starting at the line-aligned `base`,
    /// all within one line — the refill fast path.  Statistics, LRU state
    /// and scrubbing end up exactly as `count` calls to
    /// [`Cache::read_word`] would leave them, but the tag is matched once.
    /// Returns `None` (nothing recorded) when the line is not resident or
    /// the request extends past it (a caller line larger than ours); the
    /// caller falls back to per-word reads.
    pub fn read_line_words(&mut self, base: u32, count: u32) -> Option<Vec<u32>> {
        let way = self.find_way(base)?;
        let set = self.set_index(base);
        let first = self.word_index(base);
        if first + count as usize > self.config.words_per_line() as usize {
            return None;
        }
        self.access_counter += u64::from(count);
        self.stats.read_hits += u64::from(count);
        let counter = self.access_counter;
        let code = self.code.as_ref();
        let index = set * self.ways() + way;
        let line = &mut self.lines[index];
        line.last_used = counter;
        let mut out = Vec::with_capacity(count as usize);
        for word in first..first + count as usize {
            let decoded = line.decode_word(word, code);
            self.stats.ecc.record(decoded.outcome);
            if decoded.outcome.is_corrected() {
                line.words[word] = Codeword::encode(code, decoded.data);
                line.pristine |= 1u64 << word;
            }
            out.push(decoded.data as u32);
        }
        Some(out)
    }

    /// Fills the line containing `address` with `line_words` (one entry per
    /// 32-bit word of the line), evicting the LRU way if necessary.
    ///
    /// Returns the evicted line when one had to be displaced.
    ///
    /// # Panics
    ///
    /// Panics if `line_words` does not match the configured line size.
    pub fn fill(&mut self, address: u32, line_words: &[u32]) -> Option<EvictedLine> {
        assert_eq!(
            line_words.len(),
            self.config.words_per_line() as usize,
            "fill data must cover exactly one line"
        );
        self.access_counter += 1;
        self.stats.fills += 1;
        let set = self.set_index(address);
        let tag = self.tag(address);
        let counter = self.access_counter;

        // Prefer an invalid way; otherwise evict the LRU way.
        let way = {
            let lines = &self.lines[self.set_range(set)];
            lines
                .iter()
                .position(|line| !line.state.is_valid())
                .unwrap_or_else(|| {
                    lines
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, line)| line.last_used)
                        .map(|(w, _)| w)
                        // laec-lint: allow(panic-in-library) -- `validate`
                        // rejects zero-way geometries at construction, so a
                        // set always has at least one line to victimize.
                        .expect("at least one way")
                })
        };

        let index = set * self.ways() + way;
        let evicted = {
            let line = &self.lines[index];
            if line.state.is_valid() {
                let base = self.reconstruct_base(set, line.tag);
                let mut words = Vec::with_capacity(line.words.len());
                let mut uncorrectable = false;
                for word in 0..line.words.len() {
                    let decoded = line.decode_word(word, self.code.as_ref());
                    if !decoded.outcome.is_usable() {
                        uncorrectable = true;
                    }
                    words.push(decoded.data as u32);
                }
                Some(EvictedLine {
                    base_address: base,
                    words,
                    dirty: line.state.is_dirty(),
                    uncorrectable,
                })
            } else {
                None
            }
        };
        if let Some(evicted) = &evicted {
            self.stats.evictions += 1;
            if evicted.dirty {
                self.stats.writebacks += 1;
            }
        }
        if !self.corrupted.is_empty() {
            self.retire_corruption(index);
        }

        let code = self.code.as_ref();
        let line = &mut self.lines[index];
        line.state = LineState::Exclusive;
        line.tag = tag;
        line.last_used = counter;
        // `clear` + `extend` keeps the allocation across refills (and makes
        // the first fill the line's only allocation).
        line.words.clear();
        line.words.extend(
            line_words
                .iter()
                .map(|&value| Codeword::encode(code, u64::from(value))),
        );
        line.pristine = pristine_mask(line.words.len());
        evicted.filter(|e| e.dirty || e.uncorrectable)
    }

    /// Invalidates the line containing `address` (no writeback), returning
    /// `true` if it was resident.  Used by the WT+parity recovery path: a
    /// detected parity error simply drops the line and refetches it.
    pub fn invalidate(&mut self, address: u32) -> bool {
        if let Some(way) = self.find_way(address) {
            let set = self.set_index(address);
            let index = set * self.ways() + way;
            if !self.corrupted.is_empty() {
                self.retire_corruption(index);
            }
            self.lines[index].state = LineState::Invalid;
            true
        } else {
            false
        }
    }

    /// Settles the ground-truth record of a line that is about to disappear
    /// (replacement fill or invalidation): if the line architecturally held
    /// the only dirty copy but its stored metadata no longer says so — the
    /// state bits were downgraded, or the tag was flipped so the writeback
    /// went to the wrong address — that data is silently lost.
    fn retire_corruption(&mut self, index: usize) {
        let stored_tag = self.lines[index].tag;
        let stored_dirty = self.lines[index].state.is_dirty();
        if let Some(position) = self.corrupted.iter().position(|r| r.index == index) {
            let record = self.corrupted.swap_remove(position);
            let lost = record.truly_dirty && (!stored_dirty || record.true_tag != stored_tag);
            if lost {
                self.lost_writebacks += 1;
            }
            if self.journal_enabled {
                let base = self.reconstruct_base(index / self.ways(), record.true_tag);
                let (outcome, activation) = if lost {
                    // The eviction/flush that retired the record is the
                    // moment the dirty data missed its writeback.
                    (
                        FaultOutcome::LostWriteback,
                        Some(ActivationKind::WritebackDrain),
                    )
                } else {
                    (FaultOutcome::Masked, None)
                };
                self.journal.push(CacheEvent::MetaOutcome {
                    base,
                    outcome,
                    activation,
                });
            }
        }
    }

    /// Marks the line containing `address` clean (after an explicit
    /// writeback), returning `true` if it was resident.
    pub fn clean(&mut self, address: u32) -> bool {
        if let Some(way) = self.find_way(address) {
            let set = self.set_index(address);
            let index = set * self.ways() + way;
            if self.lines[index].state.is_dirty() {
                self.lines[index].state = LineState::Exclusive;
            }
            true
        } else {
            false
        }
    }

    /// The coherence state of the line containing `address` (`Invalid` when
    /// not resident).  Does not disturb LRU state or statistics.
    #[must_use]
    pub fn coherence_state(&self, address: u32) -> LineState {
        match self.find_way(address) {
            Some(way) => self.lines[self.set_index(address) * self.ways() + way].state,
            None => LineState::Invalid,
        }
    }

    /// Sets the coherence state of a resident line (the SMP coherence controller
    /// adjusts fill states and downgrades through this), returning `true`
    /// if the line was resident.  Use [`Cache::invalidate`] to drop a line.
    pub fn set_coherence_state(&mut self, address: u32, state: LineState) -> bool {
        debug_assert_ne!(state, LineState::Invalid, "use invalidate() to drop");
        if let Some(way) = self.find_way(address) {
            let index = self.set_index(address) * self.ways() + way;
            self.lines[index].state = state;
            true
        } else {
            false
        }
    }

    /// Services a remote bus transaction observed for the line containing
    /// `address`: a remote read (`invalidate == false`) moves the copy to
    /// the protocol's `snooped_read_next` state (MESI/MOESI demote to
    /// `Shared`/`Owned`; Dragon to `Sc`/`Sm`); a remote write intent
    /// (`invalidate == true`) drops the line.  A dirty copy is decoded
    /// and supplied (cache-to-cache intervention) so the requester and the
    /// level below see the newest data.  Snoops touch neither LRU state nor
    /// hit/miss statistics — they are not processor accesses.
    pub fn snoop(&mut self, address: u32, invalidate: bool) -> SnoopResult {
        // A copy hidden behind a flipped tag is missed here too: it survives
        // the invalidation and keeps serving aliased reads (counted at read
        // time) — exactly the coherence hole a tag strike opens.
        let Some(way) = self.find_way(address) else {
            return SnoopResult::default();
        };
        let set = self.set_index(address);
        let index = set * self.ways() + way;
        let was_modified = self.lines[index].state.is_dirty();
        let mut supplied = None;
        let mut uncorrectable = false;
        if was_modified {
            let line = &self.lines[index];
            let mut words = Vec::with_capacity(line.words.len());
            for word in 0..line.words.len() {
                let decoded = line.decode_word(word, self.code.as_ref());
                if !decoded.outcome.is_usable() {
                    uncorrectable = true;
                }
                words.push(decoded.data as u32);
            }
            supplied = Some(words);
        }
        if invalidate {
            if !self.corrupted.is_empty() {
                self.retire_corruption(index);
            }
            self.lines[index].state = LineState::Invalid;
        } else {
            let next = self
                .protocol
                .table()
                .snooped_read_next(self.lines[index].state);
            if self.lines[index].state != next {
                self.lines[index].state = next;
            }
        }
        SnoopResult {
            had_line: true,
            was_modified,
            invalidated: invalidate,
            supplied,
            uncorrectable,
        }
    }

    /// Applies a remote bus update (Dragon's `BusUpd`) to the line
    /// containing `address`, returning `true` if a copy was resident.  The
    /// masked bytes of the written word are merged into the stored copy —
    /// re-encoded under this cache's code — and the copy moves to `next`
    /// (`SharedClean`: the broadcaster now owns the writeback obligation).
    /// Like [`Cache::snoop`], an update is not a processor access: it
    /// touches neither LRU state nor hit/miss statistics.
    pub fn apply_update(
        &mut self,
        address: u32,
        value: u32,
        byte_mask: u8,
        next: LineState,
    ) -> bool {
        let Some(way) = self.find_way(address) else {
            return false;
        };
        let set = self.set_index(address);
        let word = self.word_index(address);
        let mask = expand_byte_mask(byte_mask);
        let index = set * self.ways() + way;
        let line = &mut self.lines[index];
        let old = line.decode_word(word, self.code.as_ref()).data as u32;
        let merged = (old & !mask) | (value & mask);
        line.words[word] = Codeword::encode(self.code.as_ref(), u64::from(merged));
        line.pristine |= 1u64 << word;
        line.state = next;
        if !self.corrupted.is_empty() {
            // A state-only corruption is settled by the update: the
            // broadcaster owns the writeback obligation from here on, so
            // this copy is architecturally clean again.  A flipped tag
            // keeps its record (the copy still answers for the wrong
            // address).
            let tag = self.lines[index].tag;
            if self.journal_enabled {
                let ways = self.ways();
                for record in &self.corrupted {
                    if record.index == index && record.true_tag == tag {
                        let base = self.reconstruct_base(record.index / ways, record.true_tag);
                        self.journal.push(CacheEvent::MetaOutcome {
                            base,
                            outcome: FaultOutcome::Masked,
                            activation: None,
                        });
                    }
                }
            }
            self.corrupted
                .retain(|r| r.index != index || r.true_tag != tag);
        }
        true
    }

    /// Injects a metadata fault — a flipped coherence-state bit or tag bit — into
    /// a random resident line, picked with `injector`.  Returns the struck
    /// line's architecturally correct base address, or `None` when the cache
    /// is empty.  The flip changes only the stored metadata; a ground-truth
    /// record is kept so the *consequences* (lost writebacks, stale reads)
    /// can be classified without influencing behaviour.
    pub fn inject_meta_fault(
        &mut self,
        injector: &mut ErrorInjector,
        target: FaultTarget,
    ) -> Option<u32> {
        let resident: Vec<usize> = (0..self.lines.len())
            .filter(|&i| self.lines[i].state.is_valid())
            .collect();
        if resident.is_empty() {
            return None;
        }
        let index = resident[injector.next_below(resident.len() as u64) as usize];
        let set_index = index / self.ways();
        let true_tag = match self.corrupted.iter().find(|r| r.index == index) {
            // Already-corrupted lines keep their original ground truth.
            Some(record) => record.true_tag,
            None => self.lines[index].tag,
        };
        let truly_dirty = self
            .corrupted
            .iter()
            .find(|r| r.index == index)
            .map_or_else(|| self.lines[index].state.is_dirty(), |r| r.truly_dirty);
        let base = self.reconstruct_base(set_index, true_tag);
        if self.journal_enabled {
            self.journal.push(CacheEvent::MetaStrike { base, target });
        }
        match target {
            FaultTarget::Data => unreachable!("data strikes use inject_fault"),
            FaultTarget::State => {
                // The strike surface is exactly as wide as the protocol's
                // state metadata: 2 bits for MESI (keeping the historical
                // injector stream), 3 for the Dragon/MOESI lattices.
                let state_bits = u64::from(self.protocol.table().state_bits());
                let bit = injector.next_below(state_bits) as u8;
                let bits = self.lines[index].state.to_bits() ^ (1 << bit);
                self.lines[index].state = LineState::from_bits(bits);
            }
            FaultTarget::Tag => {
                let tag_bits = 32 - self.offset_bits - self.index_bits;
                let bit = injector.next_below(u64::from(tag_bits)) as u32;
                self.lines[index].tag ^= 1 << bit;
            }
        }
        self.meta_faults_injected += 1;
        if self.lines[index].state.is_valid() {
            if !self.corrupted.iter().any(|r| r.index == index) {
                self.corrupted.push(MetaCorruption {
                    index,
                    true_tag,
                    truly_dirty,
                });
            }
        } else {
            // The state flip landed on Invalid: the line vanished outright.
            self.corrupted.retain(|r| r.index != index);
            if truly_dirty {
                self.lost_writebacks += 1;
            }
            if self.journal_enabled {
                let (outcome, activation) = if truly_dirty {
                    // Zero-latency loss: the strike itself destroyed the
                    // only dirty copy.
                    (
                        FaultOutcome::LostWriteback,
                        Some(ActivationKind::WritebackDrain),
                    )
                } else {
                    (FaultOutcome::Masked, None)
                };
                self.journal.push(CacheEvent::MetaOutcome {
                    base,
                    outcome,
                    activation,
                });
            }
        }
        Some(base)
    }

    /// Metadata faults injected so far.
    #[must_use]
    pub fn meta_faults_injected(&self) -> u64 {
        self.meta_faults_injected
    }

    /// Dirty lines silently dropped (or mis-addressed) because of corrupted
    /// metadata.
    #[must_use]
    pub fn lost_writebacks(&self) -> u64 {
        self.lost_writebacks
    }

    /// Reads served wrong data because of corrupted metadata.
    #[must_use]
    pub fn stale_reads(&self) -> u64 {
        self.stale_reads
    }

    /// Applies a bit-flip plan to the stored codeword at `address`,
    /// returning `true` if the word was resident (faults cannot be injected
    /// into non-resident lines).
    pub fn inject_fault(&mut self, address: u32, plan: &FlipPlan) -> bool {
        let Some(way) = self.find_way(address) else {
            return false;
        };
        let set = self.set_index(address);
        let word = self.word_index(address);
        let index = set * self.ways() + way;
        if self.journal_enabled {
            // Ground truth for SDC classification: the decoded value before
            // the strike (unknowable only when the word was already
            // undecodable from an earlier unresolved strike).
            let decoded = self.lines[index].decode_word(word, self.code.as_ref());
            let true_value = if decoded.outcome.is_usable() {
                Some(decoded.data as u32)
            } else {
                None
            };
            self.journal.push(CacheEvent::DataStrike {
                address,
                true_value,
            });
        }
        plan.apply(&mut self.lines[index].words[word]);
        self.lines[index].pristine &= !(1u64 << word);
        true
    }

    /// Addresses of all currently resident words (used by fault campaigns to
    /// pick a strike location among live data).
    #[must_use]
    pub fn resident_word_addresses(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for (set_index, set) in self.lines.chunks(self.ways()).enumerate() {
            for line in set {
                if line.state.is_valid() {
                    let base = self.reconstruct_base(set_index, line.tag);
                    for word in 0..self.config.words_per_line() {
                        out.push(base + 4 * word);
                    }
                }
            }
        }
        out
    }

    /// Number of dirty lines currently resident.
    #[must_use]
    pub fn dirty_lines(&self) -> usize {
        self.lines
            .iter()
            .filter(|line| line.state.is_dirty())
            .count()
    }

    /// Number of valid lines currently resident.
    #[must_use]
    pub fn valid_lines(&self) -> usize {
        self.lines
            .iter()
            .filter(|line| line.state.is_valid())
            .count()
    }

    /// Writes back and returns every dirty line (used at program end so the
    /// memory image can be compared across schemes).
    pub fn flush_dirty(&mut self) -> Vec<EvictedLine> {
        let mut out = Vec::new();
        let ways = self.ways();
        for index in 0..self.lines.len() {
            let set_index = index / ways;
            {
                let (dirty, tag) = {
                    let line = &self.lines[index];
                    (line.state.is_dirty(), line.tag)
                };
                if dirty {
                    let base = self.reconstruct_base(set_index, tag);
                    let mut words = Vec::with_capacity(self.config.words_per_line() as usize);
                    let mut uncorrectable = false;
                    for word in 0..self.lines[index].words.len() {
                        let decoded = self.lines[index].decode_word(word, self.code.as_ref());
                        if !decoded.outcome.is_usable() {
                            uncorrectable = true;
                        }
                        words.push(decoded.data as u32);
                    }
                    self.lines[index].state = LineState::Exclusive;
                    self.stats.writebacks += 1;
                    out.push(EvictedLine {
                        base_address: base,
                        words,
                        dirty: true,
                        uncorrectable,
                    });
                }
            }
        }
        // Architecturally-dirty lines whose corrupted metadata hid them from
        // this flush have now missed their last chance to reach memory.
        if !self.corrupted.is_empty() {
            let indices: Vec<usize> = self.corrupted.iter().map(|r| r.index).collect();
            for index in indices {
                self.retire_corruption(index);
            }
        }
        out
    }

    fn reconstruct_base(&self, set_index: usize, tag: u32) -> u32 {
        (tag << (self.offset_bits() + self.index_bits()))
            | ((set_index as u32) << self.offset_bits())
    }
}

/// All-pristine mask for a line of `words` words (the `pristine` bitmask is
/// a u64, which `CacheConfig::validate`'s line-size bounds keep sufficient).
fn pristine_mask(words: usize) -> u64 {
    debug_assert!(words <= 64, "pristine bitmask covers at most 64 words");
    if words >= 64 {
        u64::MAX
    } else {
        (1u64 << words) - 1
    }
}

/// Expands a 4-bit byte mask into a 32-bit bit mask.
fn expand_byte_mask(byte_mask: u8) -> u32 {
    let mut mask = 0u32;
    for byte in 0..4 {
        if byte_mask & (1 << byte) != 0 {
            mask |= 0xFFu32 << (8 * byte);
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AllocatePolicy;
    use laec_ecc::CodeKind;

    fn small_config() -> CacheConfig {
        // 2 sets x 2 ways x 16 B lines = 64 B: easy to force evictions.
        CacheConfig {
            size_bytes: 64,
            ways: 2,
            line_bytes: 16,
            write_policy: WritePolicy::WriteBack,
            allocate_policy: AllocatePolicy::WriteAllocate,
            protection: CodeKind::Hsiao39_32,
        }
    }

    fn line(start: u32) -> Vec<u32> {
        (0..4).map(|i| start + i).collect()
    }

    #[test]
    fn address_decomposition() {
        let cache = Cache::new(CacheConfig::dl1_write_back());
        // 32 B lines -> 5 offset bits; 128 sets -> 7 index bits.
        assert_eq!(cache.line_base(0x0000_1234), 0x0000_1220);
        assert_eq!(cache.set_index(0x0000_1234), (0x1234 >> 5) & 127);
        assert_eq!(cache.tag(0x0000_1234), 0x1234 >> 12);
        assert_eq!(cache.word_index(0x0000_1234), 5);
    }

    #[test]
    fn cold_miss_then_hit_after_fill() {
        let mut cache = Cache::new(small_config());
        assert!(!cache.probe(0x100));
        assert!(cache.read_word(0x100).is_none());
        assert_eq!(cache.stats().read_misses, 1);
        cache.fill(0x100, &line(10));
        assert!(cache.probe(0x100));
        let hit = cache.read_word(0x108).unwrap();
        assert_eq!(hit.value, 12);
        assert_eq!(hit.outcome, Outcome::Clean);
        assert!(!hit.dirty);
        assert_eq!(cache.stats().read_hits, 1);
        assert_eq!(cache.valid_lines(), 1);
    }

    #[test]
    fn writes_set_dirty_only_for_write_back() {
        let mut wb = Cache::new(small_config());
        wb.fill(0x100, &line(0));
        assert!(wb.write_word(0x104, 99));
        assert_eq!(wb.read_word(0x104).unwrap().value, 99);
        assert_eq!(wb.dirty_lines(), 1);

        let mut wt = Cache::new(CacheConfig {
            write_policy: WritePolicy::WriteThrough,
            allocate_policy: AllocatePolicy::NoWriteAllocate,
            protection: CodeKind::EvenParity32,
            ..small_config()
        });
        wt.fill(0x100, &line(0));
        assert!(wt.write_word(0x104, 99));
        assert_eq!(wt.dirty_lines(), 0);
    }

    #[test]
    fn masked_writes_merge_bytes() {
        let mut cache = Cache::new(small_config());
        cache.fill(0x100, &[0x1111_1111; 4]);
        assert!(cache.write_word_masked(0x100, 0x0000_00AA, 0b0001));
        assert_eq!(cache.read_word(0x100).unwrap().value, 0x1111_11AA);
        assert!(cache.write_word_masked(0x100, 0xBBBB_0000, 0b1100));
        assert_eq!(cache.read_word(0x100).unwrap().value, 0xBBBB_11AA);
    }

    #[test]
    fn write_miss_is_recorded_and_not_allocated() {
        let mut cache = Cache::new(small_config());
        assert!(!cache.write_word(0x500, 1));
        assert_eq!(cache.stats().write_misses, 1);
        assert!(!cache.probe(0x500));
    }

    #[test]
    fn lru_eviction_returns_dirty_victim() {
        let mut cache = Cache::new(small_config());
        // Set 0 holds lines with base addresses that are multiples of 32 (16 B
        // lines, 2 sets): 0x00, 0x20, 0x40 all map to set 0.
        cache.fill(0x00, &line(1));
        cache.fill(0x20, &line(2));
        cache.write_word(0x00, 0xAB); // make way-0 line dirty and MRU
        let evicted = cache.fill(0x40, &line(3));
        // LRU is the 0x20 line (clean): eviction returns None for clean lines.
        assert!(evicted.is_none());
        assert!(cache.probe(0x00) && cache.probe(0x40) && !cache.probe(0x20));
        // Touch 0x40 so 0x00 becomes LRU, then evict it: dirty writeback.
        cache.read_word(0x40).unwrap();
        let evicted = cache.fill(0x20, &line(4)).expect("dirty victim");
        assert_eq!(evicted.base_address, 0x00);
        assert!(evicted.dirty);
        assert_eq!(evicted.words[0], 0xAB);
        assert_eq!(cache.stats().writebacks, 1);
    }

    #[test]
    fn invalidate_and_clean() {
        let mut cache = Cache::new(small_config());
        cache.fill(0x100, &line(5));
        cache.write_word(0x100, 7);
        assert_eq!(cache.dirty_lines(), 1);
        assert!(cache.clean(0x100));
        assert_eq!(cache.dirty_lines(), 0);
        assert!(cache.invalidate(0x100));
        assert!(!cache.probe(0x100));
        assert!(!cache.invalidate(0x100));
        assert!(!cache.clean(0x100));
    }

    #[test]
    fn injected_single_bit_fault_is_corrected_and_scrubbed() {
        let mut cache = Cache::new(small_config());
        cache.fill(0x100, &[0xCAFE_F00D; 4]);
        assert!(cache.inject_fault(0x104, &FlipPlan::single_data(9)));
        let hit = cache.read_word(0x104).unwrap();
        assert_eq!(hit.outcome, Outcome::CorrectedSingle { bit: 9 });
        assert_eq!(hit.value, 0xCAFE_F00D);
        // The scrub rewrote the word: a second read is clean.
        let hit = cache.read_word(0x104).unwrap();
        assert_eq!(hit.outcome, Outcome::Clean);
        assert_eq!(cache.stats().ecc.corrected_data, 1);
    }

    #[test]
    fn injected_double_fault_is_flagged_uncorrectable() {
        let mut cache = Cache::new(small_config());
        cache.fill(0x100, &[0x0101_0101; 4]);
        cache.inject_fault(0x100, &FlipPlan::double_data(3, 17));
        let hit = cache.read_word(0x100).unwrap();
        assert_eq!(hit.outcome, Outcome::DetectedDouble);
        assert!(!cache.stats().ecc.is_safe());
    }

    #[test]
    fn fault_injection_needs_resident_data() {
        let mut cache = Cache::new(small_config());
        assert!(!cache.inject_fault(0x100, &FlipPlan::single_data(0)));
        cache.fill(0x100, &line(0));
        assert_eq!(
            cache.resident_word_addresses(),
            vec![0x100, 0x104, 0x108, 0x10C]
        );
    }

    #[test]
    fn parity_cache_detects_but_does_not_correct() {
        let mut cache = Cache::new(CacheConfig {
            protection: CodeKind::EvenParity32,
            ..small_config()
        });
        cache.fill(0x100, &[7; 4]);
        cache.inject_fault(0x100, &FlipPlan::single_data(0));
        let hit = cache.read_word(0x100).unwrap();
        assert_eq!(hit.outcome, Outcome::DetectedUncorrectable);
    }

    #[test]
    fn flush_dirty_writes_back_everything() {
        let mut cache = Cache::new(small_config());
        cache.fill(0x00, &line(0));
        cache.fill(0x10, &line(4));
        cache.write_word(0x00, 100);
        cache.write_word(0x10, 200);
        let flushed = cache.flush_dirty();
        assert_eq!(flushed.len(), 2);
        assert_eq!(cache.dirty_lines(), 0);
        let bases: Vec<u32> = flushed.iter().map(|e| e.base_address).collect();
        assert!(bases.contains(&0x00) && bases.contains(&0x10));
    }

    #[test]
    fn unprotected_cache_works_without_check_bits() {
        let mut cache = Cache::new(CacheConfig {
            protection: CodeKind::None,
            ..small_config()
        });
        cache.fill(0x100, &[42; 4]);
        // An injected flip goes completely unnoticed: silent data corruption,
        // the failure mode the paper's ECC schemes exist to prevent.
        cache.inject_fault(0x100, &FlipPlan::single_data(0));
        let hit = cache.read_word(0x100).unwrap();
        assert_eq!(hit.outcome, Outcome::Clean);
        assert_eq!(hit.value, 43);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut cache = Cache::new(small_config());
        cache.read_word(0x0);
        assert_eq!(cache.stats().read_misses, 1);
        cache.reset_stats();
        assert_eq!(cache.stats().read_misses, 0);
    }

    #[test]
    #[should_panic(expected = "exactly one line")]
    fn fill_with_wrong_word_count_panics() {
        let mut cache = Cache::new(small_config());
        cache.fill(0x100, &[1, 2]);
    }

    #[test]
    fn read_line_words_matches_per_word_reads_and_rejects_oversized_requests() {
        let mut batched = Cache::new(small_config());
        let mut serial = Cache::new(small_config());
        batched.fill(0x100, &line(7));
        serial.fill(0x100, &line(7));
        batched.inject_fault(0x104, &FlipPlan::single_data(3));
        serial.inject_fault(0x104, &FlipPlan::single_data(3));
        let words = batched.read_line_words(0x100, 4).expect("resident");
        let per_word: Vec<u32> = (0..4)
            .map(|i| serial.read_word(0x100 + 4 * i).unwrap().value)
            .collect();
        assert_eq!(words, per_word);
        assert_eq!(batched.stats(), serial.stats(), "identical counters");
        // A request larger than the line (a caller with bigger lines than
        // ours) must fall back, not index out of bounds.
        let stats_before = *batched.stats();
        assert_eq!(batched.read_line_words(0x100, 8), None);
        assert_eq!(batched.read_line_words(0x108, 4), None, "past the end");
        assert_eq!(*batched.stats(), stats_before, "nothing recorded");
        assert_eq!(batched.read_line_words(0x400, 4), None, "not resident");
    }
}

//! Event counters for the memory hierarchy.

use std::fmt;
use std::ops::{Add, AddAssign};

use laec_ecc::EccStats;

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses that hit.
    pub read_hits: u64,
    /// Read accesses that missed.
    pub read_misses: u64,
    /// Write accesses that hit.
    pub write_hits: u64,
    /// Write accesses that missed.
    pub write_misses: u64,
    /// Lines filled from the next level.
    pub fills: u64,
    /// Lines evicted (any state).
    pub evictions: u64,
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
    /// ECC decode outcomes observed on reads.
    pub ecc: EccStats,
}

impl CacheStats {
    /// A zeroed counter set.
    #[must_use]
    pub fn new() -> Self {
        CacheStats::default()
    }

    /// Total read accesses.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.read_hits + self.read_misses
    }

    /// Total write accesses.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.write_hits + self.write_misses
    }

    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Read hit rate in `[0,1]` (1.0 when there were no reads).
    #[must_use]
    pub fn read_hit_rate(&self) -> f64 {
        if self.reads() == 0 {
            1.0
        } else {
            self.read_hits as f64 / self.reads() as f64
        }
    }

    /// Overall hit rate in `[0,1]` (1.0 when there were no accesses).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            1.0
        } else {
            (self.read_hits + self.write_hits) as f64 / self.accesses() as f64
        }
    }
}

impl Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            read_hits: self.read_hits + rhs.read_hits,
            read_misses: self.read_misses + rhs.read_misses,
            write_hits: self.write_hits + rhs.write_hits,
            write_misses: self.write_misses + rhs.write_misses,
            fills: self.fills + rhs.fills,
            evictions: self.evictions + rhs.evictions,
            writebacks: self.writebacks + rhs.writebacks,
            ecc: self.ecc + rhs.ecc,
        }
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads {}/{} hits, writes {}/{} hits, fills {}, evictions {} ({} dirty)",
            self.read_hits,
            self.reads(),
            self.write_hits,
            self.writes(),
            self.fills,
            self.evictions,
            self.writebacks
        )
    }
}

/// Counters for the whole hierarchy as seen by one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// DL1 counters.
    pub dl1: CacheStats,
    /// L2 counters (this core's share).
    pub l2: CacheStats,
    /// Bus transactions issued by this core.
    pub bus_transactions: u64,
    /// Cycles this core's requests spent waiting for the bus (arbitration).
    pub bus_wait_cycles: u64,
    /// Accesses that went all the way to main memory.
    pub memory_accesses: u64,
    /// Stores that were absorbed by the write buffer.
    pub write_buffer_enqueues: u64,
    /// Remote-cache lookups this core's bus transactions triggered (every
    /// coherent bus transaction probes the other cores' DL1 tag arrays).
    pub snoop_lookups: u64,
    /// Remote copies this core's write intents invalidated.
    pub invalidations_sent: u64,
    /// Local copies invalidated by other cores' write intents.
    pub invalidations_received: u64,
    /// Dirty lines supplied cache-to-cache to this core's requests
    /// (Modified interventions).
    pub interventions: u64,
    /// Bus-update payloads this core's writes broadcast into remote copies
    /// (Dragon's `BusUpd`; always zero under the invalidate-based
    /// protocols).
    pub bus_updates_sent: u64,
    /// Cycles in which the write buffer was full and stalled a store.
    pub write_buffer_full_stalls: u64,
    /// Loads that had to wait for the write buffer to drain.
    pub write_buffer_drain_stalls: u64,
}

impl MemStats {
    /// A zeroed counter set.
    #[must_use]
    pub fn new() -> Self {
        MemStats::default()
    }
}

impl fmt::Display for MemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DL1: {}", self.dl1)?;
        writeln!(f, "L2 : {}", self.l2)?;
        write!(
            f,
            "bus: {} transactions ({} wait cycles), memory: {} accesses",
            self.bus_transactions, self.bus_wait_cycles, self.memory_accesses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_accesses() {
        let stats = CacheStats::new();
        assert_eq!(stats.read_hit_rate(), 1.0);
        assert_eq!(stats.hit_rate(), 1.0);
        assert_eq!(stats.accesses(), 0);
    }

    #[test]
    fn rates_and_totals() {
        let stats = CacheStats {
            read_hits: 90,
            read_misses: 10,
            write_hits: 40,
            write_misses: 10,
            ..CacheStats::default()
        };
        assert_eq!(stats.reads(), 100);
        assert_eq!(stats.writes(), 50);
        assert_eq!(stats.accesses(), 150);
        assert!((stats.read_hit_rate() - 0.9).abs() < 1e-12);
        assert!((stats.hit_rate() - 130.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn addition_accumulates() {
        let a = CacheStats {
            read_hits: 1,
            fills: 2,
            ..CacheStats::default()
        };
        let b = CacheStats {
            read_hits: 3,
            writebacks: 1,
            ..CacheStats::default()
        };
        let sum = a + b;
        assert_eq!(sum.read_hits, 4);
        assert_eq!(sum.fills, 2);
        assert_eq!(sum.writebacks, 1);
        let mut c = a;
        c += b;
        assert_eq!(c, sum);
    }

    #[test]
    fn display_not_empty() {
        assert!(!CacheStats::new().to_string().is_empty());
        assert!(MemStats::new().to_string().contains("bus"));
    }
}

//! The memory-hierarchy side of trace replay.
//!
//! [`ReplayMemory`] wires a fresh [`MemorySystem`] (plus an optional
//! [`FaultCampaign`]) into `laec_trace`'s [`ReplayTarget`] so a recorded
//! access/commit stream can be re-executed without the pipeline: loads and
//! stores are issued at their recorded cycle stamps, and every recorded
//! commit is offered to the fault campaign as an injection opportunity —
//! exactly the interleaving the full simulator produces.  Commit runs use
//! [`FaultCampaign::maybe_inject_many`], so access-free stretches of the
//! program cost O(injections), not O(instructions).

use laec_trace::{ReplayLoad, ReplayTarget};

use crate::bus::Interference;
use crate::config::HierarchyConfig;
use crate::fault::{FaultCampaign, FaultCampaignConfig, FaultCampaignReport};
use crate::forensics::CellForensics;
use crate::hierarchy::MemorySystem;
use crate::stats::MemStats;

/// A memory system (plus optional fault campaign) driven by a trace.
#[derive(Debug)]
pub struct ReplayMemory {
    system: MemorySystem,
    campaign: Option<FaultCampaign>,
    /// `true` when the scheme under replay pays a timing penalty on *any*
    /// detected ECC error (the speculate-and-flush recovery): such a
    /// response must be reported as a timing divergence even if the error
    /// was corrected.
    flush_on_error: bool,
}

impl ReplayMemory {
    /// Builds an empty replay target over `config`.
    #[must_use]
    pub fn new(config: HierarchyConfig) -> Self {
        ReplayMemory {
            system: MemorySystem::new(config),
            campaign: None,
            flush_on_error: false,
        }
    }

    /// Installs a fault campaign (builder style).
    #[must_use]
    pub fn with_fault_campaign(mut self, config: FaultCampaignConfig) -> Self {
        self.campaign = Some(FaultCampaign::new(config));
        self
    }

    /// Installs bus interference (builder style).
    #[must_use]
    pub fn with_bus_interference(mut self, interference: Interference) -> Self {
        self.system.set_bus_interference(interference);
        self
    }

    /// Marks the replayed scheme as paying a flush penalty on detected
    /// errors (builder style; speculate-and-flush only).
    #[must_use]
    pub fn with_flush_on_error(mut self, flush_on_error: bool) -> Self {
        self.flush_on_error = flush_on_error;
        self
    }

    /// Turns on per-fault lifecycle forensics on the replayed system
    /// (builder style).  Replay re-issues the recorded (event, cycle)
    /// stream, so an enabled replay produces byte-identical records to the
    /// full simulation it was recorded from.
    #[must_use]
    pub fn with_forensics(mut self, enabled: bool) -> Self {
        if enabled {
            self.system.enable_forensics();
        }
        self
    }

    /// Takes the closed forensics record set (see
    /// [`MemorySystem::take_forensics`]); call after
    /// [`ReplayMemory::drain_to_memory`].
    pub fn take_forensics(&mut self) -> Option<CellForensics> {
        self.system.take_forensics()
    }

    /// Pre-sizes main memory for a data image of about `words` words.
    pub fn reserve_memory(&mut self, words: usize) {
        self.system.reserve_memory(words);
    }

    /// Pre-loads the program's data image (mirrors `Simulator::new`).
    pub fn preload_word(&mut self, address: u32, value: u32) {
        self.system.preload_word(address, value);
    }

    /// The underlying memory system (statistics, error counters).
    #[must_use]
    pub fn system(&self) -> &MemorySystem {
        &self.system
    }

    /// Accumulated memory statistics.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        self.system.stats()
    }

    /// The fault campaign's counters (zeroes when no campaign is attached).
    #[must_use]
    pub fn campaign_report(&self) -> FaultCampaignReport {
        self.campaign
            .as_ref()
            .map_or_else(FaultCampaignReport::default, FaultCampaign::report)
    }

    /// Flushes dirty state and returns the final memory-image checksum
    /// (mirrors the end of `Simulator::execute`).
    pub fn drain_to_memory(&mut self) -> u64 {
        self.system.drain_to_memory()
    }
}

impl ReplayTarget for ReplayMemory {
    fn replay_load(&mut self, address: u32, cycle: u64) -> ReplayLoad {
        let response = self.system.load_word(address, cycle);
        ReplayLoad {
            value: response.value,
            hit: response.dl1_hit,
            extra_cycles: response.extra_cycles,
            timing_error: self.flush_on_error && response.outcome.is_error(),
        }
    }

    fn replay_store(&mut self, address: u32, value: u32, byte_mask: u8, cycle: u64) {
        let _ = self
            .system
            .store_word_masked(address, value, byte_mask, cycle);
    }

    fn replay_commits(&mut self, count: u64) {
        if let Some(campaign) = &mut self.campaign {
            let _ = campaign.maybe_inject_many(count, &mut self.system);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laec_trace::{replay_trace, Trace, TraceContext, TraceRecorder, TraceSink, TraceSummary};

    /// Drives a scripted access pattern against a plain `MemorySystem`
    /// while recording it, then replays the recording against a twin and
    /// checks the two systems are indistinguishable.
    #[test]
    fn replayed_twin_matches_the_original_system() {
        let mut recorder = TraceRecorder::new(TraceContext::new("twin", "laec", "wb", 0));
        let mut original = MemorySystem::new(HierarchyConfig::ngmp_write_back());
        for i in 0..16u32 {
            original.preload_word(0x1000 + 4 * i, i * 3);
        }
        let mut cycle = 0u64;
        for i in 0..16u32 {
            let address = 0x1000 + 4 * (i % 8);
            let response = original.load_word(address, cycle);
            recorder.record_mem_read(
                address,
                cycle,
                response.value,
                response.dl1_hit,
                response.extra_cycles,
            );
            recorder.record_commit();
            cycle += 1 + u64::from(response.extra_cycles);
            if i % 3 == 0 {
                let value = 0xA000 + i;
                original.store_word(address, value, cycle);
                recorder.record_mem_write(address, cycle, value, 0xF);
                recorder.record_commit();
                cycle += 1;
            }
        }
        let original_stats = original.stats();
        let trace = recorder.finish(TraceSummary::default());

        let mut twin = ReplayMemory::new(HierarchyConfig::ngmp_write_back());
        for i in 0..16u32 {
            twin.preload_word(0x1000 + 4 * i, i * 3);
        }
        let progress = replay_trace(&trace, &mut twin).expect("no faults, no divergence");
        assert_eq!(progress.loads, 16);
        assert_eq!(twin.stats(), original_stats);
        assert_eq!(twin.drain_to_memory(), original.drain_to_memory());
    }

    #[test]
    fn injection_opportunities_follow_recorded_commit_runs() {
        // 25 commits at interval 10 → 2 injections, regardless of how the
        // commits were run-length encoded.
        let config = HierarchyConfig::ngmp_write_back();
        let mut recorder = TraceRecorder::new(TraceContext::new("w", "s", "p", 0));
        recorder.record_mem_read(0x2000, 0, 0, false, config.memory_penalty());
        for _ in 0..25 {
            recorder.record_commit();
        }
        let trace = recorder.finish(TraceSummary::default());

        let mut target =
            ReplayMemory::new(config).with_fault_campaign(FaultCampaignConfig::single_bit(3, 10));
        target.preload_word(0x2000, 0);
        // The single recorded load misses and refills — matching the twin
        // response — then the commit run drives the campaign.
        replay_trace(&trace, &mut target).expect("faithful");
        assert_eq!(target.campaign_report().injected, 2);
    }

    /// Records a fault-free stream that keeps re-reading one warm DL1 line,
    /// so a replay with injection *must* read back a strike eventually.
    fn scrub_loop_trace(rounds: u32) -> Trace {
        let mut recorder = TraceRecorder::new(TraceContext::new("w", "s", "p", 0));
        let mut original = MemorySystem::new(HierarchyConfig::ngmp_write_back());
        for i in 0..8u32 {
            original.preload_word(0x3000 + 4 * i, 100 + i);
        }
        let mut cycle = 0u64;
        for round in 0..rounds {
            for i in 0..8u32 {
                let address = 0x3000 + 4 * i;
                let response = original.load_word(address, cycle);
                recorder.record_mem_read(
                    address,
                    cycle,
                    response.value,
                    response.dl1_hit,
                    response.extra_cycles,
                );
                recorder.record_commit();
                cycle += 1 + u64::from(response.extra_cycles) + u64::from(round);
            }
        }
        recorder.finish(TraceSummary::default())
    }

    #[test]
    fn speculate_flush_reports_read_back_errors_as_divergence() {
        // Interval 1: a strike lands in the warm line after every commit,
        // and the stream keeps reading the whole line, so some load reads
        // back an error.  Under flush-on-error semantics even a *corrected*
        // error is a timing event — the replay must refuse to continue.
        let trace = scrub_loop_trace(6);
        let mut target = ReplayMemory::new(HierarchyConfig::ngmp_write_back())
            .with_fault_campaign(FaultCampaignConfig::single_bit(11, 1))
            .with_flush_on_error(true);
        for i in 0..8u32 {
            target.preload_word(0x3000 + 4 * i, 100 + i);
        }
        let error = replay_trace(&trace, &mut target).unwrap_err();
        assert!(
            matches!(error, laec_trace::Divergence::SchemeTimingError { .. }),
            "{error}"
        );
    }

    #[test]
    fn absorbed_strikes_replay_without_divergence_and_are_counted() {
        // Without flush-on-error semantics, SEC-DED absorbs sparse single-
        // bit strikes: the replay completes and the corrected counter of
        // the replayed system shows the strikes were really read back.
        let trace = scrub_loop_trace(8);
        let mut target = ReplayMemory::new(HierarchyConfig::ngmp_write_back())
            .with_fault_campaign(FaultCampaignConfig::single_bit(0xFEED, 16));
        for i in 0..8u32 {
            target.preload_word(0x3000 + 4 * i, 100 + i);
        }
        replay_trace(&trace, &mut target).expect("SEC-DED absorbs the strikes");
        let report = target.campaign_report();
        assert_eq!(report.injected, 4, "64 commits at interval 16");
        assert!(
            target.stats().dl1.ecc.corrected() > 0,
            "strikes were read back and corrected"
        );
    }
}

//! Soft-error campaign bookkeeping over the DL1.
//!
//! A campaign repeatedly injects bit flips into resident DL1 words while a
//! workload runs and classifies what became of each strike: masked (the word
//! was overwritten or evicted before being read), corrected, recovered by a
//! refetch from the L2 (write-through + parity), or unrecoverable (dirty data
//! in a write-back DL1 with an uncorrectable error).  The classification is
//! exactly the safety argument of the paper's §I–II: a WB DL1 *needs*
//! correction, a WT DL1 can live with detection.

use laec_ecc::ErrorInjector;

use crate::hierarchy::MemorySystem;

/// Configuration of an injection campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultCampaignConfig {
    /// Seed of the campaign's private random source.
    pub seed: u64,
    /// Inject one fault every `interval` injection opportunities (calls to
    /// [`FaultCampaign::maybe_inject`]); 0 disables injection.
    pub interval: u64,
    /// Fraction of injections that are double-bit (MBU-like) rather than
    /// single-bit.
    pub double_fraction: f64,
}

impl FaultCampaignConfig {
    /// A single-bit-upset-only campaign injecting every `interval` opportunities.
    #[must_use]
    pub fn single_bit(seed: u64, interval: u64) -> Self {
        FaultCampaignConfig {
            seed,
            interval,
            double_fraction: 0.0,
        }
    }
}

impl Default for FaultCampaignConfig {
    fn default() -> Self {
        FaultCampaignConfig {
            seed: 0x000F_A117,
            interval: 1_000,
            double_fraction: 0.0,
        }
    }
}

/// Outcome counters of a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCampaignReport {
    /// Faults injected into resident DL1 words.
    pub injected: u64,
    /// Injection opportunities where the DL1 held no data (nothing injected).
    pub skipped_empty: u64,
}

/// Drives periodic fault injection into a [`MemorySystem`].
#[derive(Debug)]
pub struct FaultCampaign {
    config: FaultCampaignConfig,
    injector: ErrorInjector,
    opportunities: u64,
    report: FaultCampaignReport,
}

impl FaultCampaign {
    /// Creates a campaign.
    #[must_use]
    pub fn new(config: FaultCampaignConfig) -> Self {
        FaultCampaign {
            injector: ErrorInjector::new(config.seed),
            config,
            opportunities: 0,
            report: FaultCampaignReport::default(),
        }
    }

    /// Campaign configuration.
    #[must_use]
    pub fn config(&self) -> &FaultCampaignConfig {
        &self.config
    }

    /// Called once per injection opportunity (typically once per simulated
    /// cycle or per memory access); injects when the interval elapses.
    /// Returns the struck address when an injection happened.
    pub fn maybe_inject(&mut self, system: &mut MemorySystem) -> Option<u32> {
        if self.config.interval == 0 {
            return None;
        }
        self.opportunities += 1;
        if !self.opportunities.is_multiple_of(self.config.interval) {
            return None;
        }
        match system.inject_random_dl1_fault(&mut self.injector, self.config.double_fraction) {
            Some(address) => {
                self.report.injected += 1;
                Some(address)
            }
            None => {
                self.report.skipped_empty += 1;
                None
            }
        }
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn report(&self) -> FaultCampaignReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;

    #[test]
    fn disabled_campaign_never_injects() {
        let mut system = MemorySystem::new(HierarchyConfig::ngmp_write_back());
        system.load_word(0x100, 0);
        let mut campaign = FaultCampaign::new(FaultCampaignConfig {
            interval: 0,
            ..FaultCampaignConfig::default()
        });
        for _ in 0..100 {
            assert!(campaign.maybe_inject(&mut system).is_none());
        }
        assert_eq!(campaign.report().injected, 0);
    }

    #[test]
    fn campaign_injects_at_the_configured_interval() {
        let mut system = MemorySystem::new(HierarchyConfig::ngmp_write_back());
        system.load_word(0x100, 0);
        let mut campaign = FaultCampaign::new(FaultCampaignConfig::single_bit(7, 10));
        let mut injections = 0;
        for _ in 0..100 {
            if campaign.maybe_inject(&mut system).is_some() {
                injections += 1;
            }
        }
        assert_eq!(injections, 10);
        assert_eq!(campaign.report().injected, 10);
        assert_eq!(campaign.report().skipped_empty, 0);
    }

    #[test]
    fn empty_dl1_counts_skips() {
        let mut system = MemorySystem::new(HierarchyConfig::ngmp_write_back());
        let mut campaign = FaultCampaign::new(FaultCampaignConfig::single_bit(7, 1));
        for _ in 0..5 {
            assert!(campaign.maybe_inject(&mut system).is_none());
        }
        assert_eq!(campaign.report().skipped_empty, 5);
    }

    #[test]
    fn injected_faults_are_absorbed_by_secded() {
        let mut system = MemorySystem::new(HierarchyConfig::ngmp_write_back());
        for i in 0..32u32 {
            system.preload_word(0x2000 + 4 * i, i);
        }
        for i in 0..32u32 {
            system.load_word(0x2000 + 4 * i, u64::from(i));
        }
        // Inject single-bit strikes one at a time, reading everything back
        // (and thereby scrubbing) between strikes: every strike is absorbed.
        let mut campaign = FaultCampaign::new(FaultCampaignConfig::single_bit(123, 1));
        for round in 0..50u64 {
            campaign.maybe_inject(&mut system);
            for i in 0..32u32 {
                let now = 1_000 + 100 * round + u64::from(i);
                assert_eq!(system.load_word(0x2000 + 4 * i, now).value, i);
            }
        }
        assert_eq!(campaign.report().injected, 50);
        assert_eq!(system.unrecoverable_errors(), 0);
        assert!(
            system.stats().dl1.ecc.corrected() > 0,
            "some strikes were read back"
        );
    }
}

//! Soft-error campaign bookkeeping over the DL1.
//!
//! A campaign repeatedly injects bit flips into resident DL1 words while a
//! workload runs and classifies what became of each strike: masked (the word
//! was overwritten or evicted before being read), corrected, recovered by a
//! refetch from the L2 (write-through + parity), or unrecoverable (dirty data
//! in a write-back DL1 with an uncorrectable error).  The classification is
//! exactly the safety argument of the paper's §I–II: a WB DL1 *needs*
//! correction, a WT DL1 can live with detection.

use laec_ecc::ErrorInjector;

use crate::port::MemoryPort;

/// The spatial shape of each injected strike.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FaultPattern {
    /// Independent single-bit upsets over data + check arrays (a
    /// `double_fraction` of events strike two independent positions).
    #[default]
    SingleBit,
    /// One particle striking two *adjacent* data bits (small-geometry MBU).
    /// SEC-DED detects but never corrects these.
    Adjacent2,
    /// One particle striking four adjacent data bits (worst-case MBU
    /// cluster).  Beyond SEC-DED's guarantees: strikes may even alias to a
    /// "correctable" syndrome and silently miscorrect.
    Adjacent4,
}

impl FaultPattern {
    /// Stable label used in reports and on the CLI.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultPattern::SingleBit => "single",
            FaultPattern::Adjacent2 => "mbu2",
            FaultPattern::Adjacent4 => "mbu4",
        }
    }

    /// Parses a CLI label.
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "single" | "sbu" => Some(FaultPattern::SingleBit),
            "mbu2" | "adjacent2" => Some(FaultPattern::Adjacent2),
            "mbu4" | "adjacent4" => Some(FaultPattern::Adjacent4),
            _ => None,
        }
    }

    /// Bits flipped per strike.
    #[must_use]
    pub fn cluster_bits(self) -> u32 {
        match self {
            FaultPattern::SingleBit => 1,
            FaultPattern::Adjacent2 => 2,
            FaultPattern::Adjacent4 => 4,
        }
    }
}

/// Which physical array of the DL1 a campaign strikes.
///
/// The data array is what the paper's ECC schemes protect; the metadata
/// arrays (coherence state bits and address tags) are *not* covered by the
/// per-word code on the modelled platforms, so strikes there open failure
/// modes no data-array code can see: a `Modified` line whose state bits read
/// clean silently loses its writeback, and a flipped tag bit makes the line
/// answer for the wrong address (stale or aliased reads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FaultTarget {
    /// The ECC-protected data (+ check bit) array.
    #[default]
    Data,
    /// The per-line coherence state bits (unprotected metadata); the
    /// strike surface widens with the protocol's state lattice (2 bits
    /// under MESI, 3 under Dragon/MOESI).
    State,
    /// The per-line address tag bits (unprotected metadata).
    Tag,
}

impl FaultTarget {
    /// Stable label used in reports and on the CLI.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultTarget::Data => "data",
            FaultTarget::State => "state",
            FaultTarget::Tag => "tag",
        }
    }

    /// Parses a CLI label.
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        label.parse().ok()
    }
}

impl core::fmt::Display for FaultTarget {
    /// The canonical label ([`FaultTarget::label`]); round-trips through
    /// the [`FromStr`](core::str::FromStr) impl.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// The error of [`FaultTarget`]'s `FromStr`: the offending label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFaultTargetError {
    /// The label that named no fault target.
    pub label: String,
}

impl core::fmt::Display for ParseFaultTargetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "unknown fault target `{}`", self.label)
    }
}

impl std::error::Error for ParseFaultTargetError {}

impl std::str::FromStr for FaultTarget {
    type Err = ParseFaultTargetError;

    /// Parses a canonical target label (`data`, `state`, `tag`); `mesi` is
    /// accepted as an alias for `state`.
    fn from_str(label: &str) -> Result<Self, Self::Err> {
        match label {
            "data" => Ok(FaultTarget::Data),
            "state" | "mesi" => Ok(FaultTarget::State),
            "tag" => Ok(FaultTarget::Tag),
            _ => Err(ParseFaultTargetError {
                label: label.to_string(),
            }),
        }
    }
}

/// Configuration of an injection campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultCampaignConfig {
    /// Seed of the campaign's private random source.
    pub seed: u64,
    /// Inject one fault every `interval` injection opportunities (calls to
    /// [`FaultCampaign::maybe_inject`]); 0 disables injection.
    pub interval: u64,
    /// For [`FaultPattern::SingleBit`]: fraction of injections that are
    /// double-bit (two independent positions) rather than single-bit.
    pub double_fraction: f64,
    /// Spatial shape of each strike (data-array campaigns).
    pub pattern: FaultPattern,
    /// Which DL1 array the strikes land in.
    pub target: FaultTarget,
}

impl FaultCampaignConfig {
    /// A single-bit-upset-only campaign injecting every `interval` opportunities.
    #[must_use]
    pub fn single_bit(seed: u64, interval: u64) -> Self {
        FaultCampaignConfig {
            seed,
            interval,
            double_fraction: 0.0,
            pattern: FaultPattern::SingleBit,
            target: FaultTarget::Data,
        }
    }

    /// An adjacent-bit MBU campaign with the given strike `pattern`.
    #[must_use]
    pub fn with_pattern(seed: u64, interval: u64, pattern: FaultPattern) -> Self {
        FaultCampaignConfig {
            seed,
            interval,
            double_fraction: 0.0,
            pattern,
            target: FaultTarget::Data,
        }
    }

    /// A campaign striking the given DL1 array (builder style).
    #[must_use]
    pub fn with_target(mut self, target: FaultTarget) -> Self {
        self.target = target;
        self
    }
}

impl Default for FaultCampaignConfig {
    fn default() -> Self {
        FaultCampaignConfig {
            seed: 0x000F_A117,
            interval: 1_000,
            double_fraction: 0.0,
            pattern: FaultPattern::SingleBit,
            target: FaultTarget::Data,
        }
    }
}

/// Outcome counters of a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCampaignReport {
    /// Faults injected into resident DL1 words.
    pub injected: u64,
    /// Injection opportunities where the DL1 held no data (nothing injected).
    pub skipped_empty: u64,
}

/// Drives periodic fault injection into a [`MemorySystem`](crate::MemorySystem).
#[derive(Debug)]
pub struct FaultCampaign {
    config: FaultCampaignConfig,
    injector: ErrorInjector,
    /// Opportunities left until the next injection (a countdown rather than
    /// an opportunity counter + modulo: this runs once per simulated
    /// instruction).  Zero means injection is disabled.
    until_next: u64,
    report: FaultCampaignReport,
}

impl FaultCampaign {
    /// Creates a campaign.
    #[must_use]
    pub fn new(config: FaultCampaignConfig) -> Self {
        FaultCampaign {
            injector: ErrorInjector::new(config.seed),
            until_next: config.interval,
            config,
            report: FaultCampaignReport::default(),
        }
    }

    /// Campaign configuration.
    #[must_use]
    pub fn config(&self) -> &FaultCampaignConfig {
        &self.config
    }

    /// Called once per injection opportunity (typically once per simulated
    /// cycle or per memory access); injects when the interval elapses.
    /// Returns the struck address when an injection happened.
    pub fn maybe_inject<M: MemoryPort>(&mut self, system: &mut M) -> Option<u32> {
        if self.config.interval == 0 {
            return None;
        }
        self.until_next -= 1;
        if self.until_next > 0 {
            return None;
        }
        self.until_next = self.config.interval;
        self.inject_now(system)
    }

    /// Advances `opportunities` injection opportunities at once, injecting
    /// at every interval boundary exactly as the same number of serial
    /// [`FaultCampaign::maybe_inject`] calls would — but in
    /// O(injections) rather than O(opportunities).  Trace replay uses this
    /// to burn through run-length-encoded commit runs.
    ///
    /// Returns the number of faults injected.
    pub fn maybe_inject_many<M: MemoryPort>(&mut self, opportunities: u64, system: &mut M) -> u64 {
        if self.config.interval == 0 {
            return 0;
        }
        let mut remaining = opportunities;
        let mut injected = 0;
        while remaining >= self.until_next {
            remaining -= self.until_next;
            self.until_next = self.config.interval;
            if self.inject_now(system).is_some() {
                injected += 1;
            }
        }
        self.until_next -= remaining;
        injected
    }

    fn inject_now<M: MemoryPort>(&mut self, system: &mut M) -> Option<u32> {
        match system.inject_random_fault(&mut self.injector, &self.config) {
            Some(address) => {
                self.report.injected += 1;
                Some(address)
            }
            None => {
                self.report.skipped_empty += 1;
                None
            }
        }
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn report(&self) -> FaultCampaignReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;
    use crate::hierarchy::MemorySystem;

    #[test]
    fn disabled_campaign_never_injects() {
        let mut system = MemorySystem::new(HierarchyConfig::ngmp_write_back());
        system.load_word(0x100, 0);
        let mut campaign = FaultCampaign::new(FaultCampaignConfig {
            interval: 0,
            ..FaultCampaignConfig::default()
        });
        for _ in 0..100 {
            assert!(campaign.maybe_inject(&mut system).is_none());
        }
        assert_eq!(campaign.report().injected, 0);
    }

    #[test]
    fn campaign_injects_at_the_configured_interval() {
        let mut system = MemorySystem::new(HierarchyConfig::ngmp_write_back());
        system.load_word(0x100, 0);
        let mut campaign = FaultCampaign::new(FaultCampaignConfig::single_bit(7, 10));
        let mut injections = 0;
        for _ in 0..100 {
            if campaign.maybe_inject(&mut system).is_some() {
                injections += 1;
            }
        }
        assert_eq!(injections, 10);
        assert_eq!(campaign.report().injected, 10);
        assert_eq!(campaign.report().skipped_empty, 0);
    }

    #[test]
    fn empty_dl1_counts_skips() {
        let mut system = MemorySystem::new(HierarchyConfig::ngmp_write_back());
        let mut campaign = FaultCampaign::new(FaultCampaignConfig::single_bit(7, 1));
        for _ in 0..5 {
            assert!(campaign.maybe_inject(&mut system).is_none());
        }
        assert_eq!(campaign.report().skipped_empty, 5);
    }

    #[test]
    fn bulk_opportunities_match_serial_opportunities_exactly() {
        // maybe_inject_many must be indistinguishable from the same number
        // of serial maybe_inject calls: same injections, same RNG stream,
        // same struck words — asserted through the systems' ECC stats after
        // reading everything back.
        let mut serial_system = MemorySystem::new(HierarchyConfig::ngmp_write_back());
        let mut bulk_system = MemorySystem::new(HierarchyConfig::ngmp_write_back());
        for i in 0..16u32 {
            serial_system.load_word(0x4000 + 4 * i, u64::from(i));
            bulk_system.load_word(0x4000 + 4 * i, u64::from(i));
        }
        let config = FaultCampaignConfig::single_bit(0xABCD, 7);
        let mut serial = FaultCampaign::new(config);
        let mut bulk = FaultCampaign::new(config);
        // Odd-shaped chunks, including zero and sub-interval runs.
        let chunks = [3u64, 0, 11, 7, 1, 29, 2, 47];
        let total: u64 = chunks.iter().sum();
        for _ in 0..total {
            serial.maybe_inject(&mut serial_system);
        }
        let mut bulk_injected = 0;
        for chunk in chunks {
            bulk_injected += bulk.maybe_inject_many(chunk, &mut bulk_system);
        }
        assert_eq!(serial.report(), bulk.report());
        assert_eq!(bulk_injected, bulk.report().injected);
        assert_eq!(serial.report().injected, total / 7);
        // Read everything back: identical ECC outcomes prove the same bits
        // were struck in the same order.
        for i in 0..16u32 {
            let address = 0x4000 + 4 * i;
            let now = 1_000 + u64::from(i);
            assert_eq!(
                serial_system.load_word(address, now).outcome,
                bulk_system.load_word(address, now).outcome
            );
        }
        assert_eq!(serial_system.stats().dl1.ecc, bulk_system.stats().dl1.ecc);
    }

    #[test]
    fn mbu_pattern_campaign_defeats_secded_correction() {
        let mut system = MemorySystem::new(HierarchyConfig::ngmp_write_back());
        for i in 0..8u32 {
            system.preload_word(0x5000 + 4 * i, i);
        }
        for i in 0..8u32 {
            system.load_word(0x5000 + 4 * i, u64::from(i));
        }
        let mut campaign = FaultCampaign::new(FaultCampaignConfig::with_pattern(
            5,
            1,
            FaultPattern::Adjacent2,
        ));
        let mut uncorrectable_reads = 0;
        for round in 0..20u64 {
            let struck = campaign.maybe_inject(&mut system).expect("line resident");
            let read = system.load_word(struck, 100 * (round + 1));
            if read.outcome.is_uncorrectable() {
                uncorrectable_reads += 1;
            }
        }
        assert_eq!(campaign.report().injected, 20);
        assert_eq!(
            uncorrectable_reads, 20,
            "every adjacent double must be detected, never corrected"
        );
        assert_eq!(system.stats().dl1.ecc.corrected(), 0);
    }

    #[test]
    fn injected_faults_are_absorbed_by_secded() {
        let mut system = MemorySystem::new(HierarchyConfig::ngmp_write_back());
        for i in 0..32u32 {
            system.preload_word(0x2000 + 4 * i, i);
        }
        for i in 0..32u32 {
            system.load_word(0x2000 + 4 * i, u64::from(i));
        }
        // Inject single-bit strikes one at a time, reading everything back
        // (and thereby scrubbing) between strikes: every strike is absorbed.
        let mut campaign = FaultCampaign::new(FaultCampaignConfig::single_bit(123, 1));
        for round in 0..50u64 {
            campaign.maybe_inject(&mut system);
            for i in 0..32u32 {
                let now = 1_000 + 100 * round + u64::from(i);
                assert_eq!(system.load_word(0x2000 + 4 * i, now).value, i);
            }
        }
        assert_eq!(campaign.report().injected, 50);
        assert_eq!(system.unrecoverable_errors(), 0);
        assert!(
            system.stats().dl1.ecc.corrected() > 0,
            "some strikes were read back"
        );
    }
}

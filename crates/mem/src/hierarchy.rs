//! The full memory system seen by one core: private DL1, shared bus, shared
//! L2 and main memory.
//!
//! The model is functional *and* timed: every access returns both the correct
//! architectural value and the number of extra stall cycles beyond a 1-cycle
//! DL1 hit.  The paper's DL1 is blocking (a miss stalls the pipeline), which
//! keeps the timing interface simple: the pipeline adds `extra_cycles` stall
//! cycles to the memory stage.
//!
//! Only one core executes a task in the paper's evaluation (§IV); the other
//! cores' bus traffic can be represented with
//! [`Interference`] for the contention-oriented
//! ablation.

use laec_ecc::{ErrorInjector, FlipPlan, Outcome};
use laec_trace::{MemLevel, TraceSink};

use crate::bus::{Bus, Interference};
use crate::cache::{Cache, EvictedLine};
use crate::config::{AllocatePolicy, HierarchyConfig, WritePolicy};
use crate::fault::{FaultCampaignConfig, FaultPattern, FaultTarget};
use crate::forensics::{ActivationKind, CellForensics, DataObservation, ForensicsLog};
use crate::memory::MainMemory;
use crate::stats::MemStats;

/// Injects one random campaign strike into `cache` — shared by the
/// uniprocessor [`MemorySystem`] and the coherent per-core DL1s of
/// `laec_smp`, so both engines draw the exact same injector stream for the
/// same configuration (a prerequisite for their byte-identical reports).
pub fn inject_random_cache_fault(
    cache: &mut Cache,
    injector: &mut ErrorInjector,
    config: &FaultCampaignConfig,
) -> Option<u32> {
    match config.target {
        FaultTarget::Data => {
            let resident = cache.resident_word_addresses();
            if resident.is_empty() {
                return None;
            }
            let address = resident[injector.next_below(resident.len() as u64) as usize];
            let check_bits = cache.config().protection.check_bits();
            let plan = match config.pattern {
                FaultPattern::SingleBit => {
                    injector.random_event(32, check_bits.max(1), config.double_fraction)
                }
                FaultPattern::Adjacent2 | FaultPattern::Adjacent4 => {
                    injector.random_adjacent(32, config.pattern.cluster_bits())
                }
            };
            cache.inject_fault(address, &plan);
            Some(address)
        }
        FaultTarget::State | FaultTarget::Tag => cache.inject_meta_fault(injector, config.target),
    }
}

/// Result of a load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadResponse {
    /// The loaded (aligned) 32-bit word.
    pub value: u32,
    /// `true` if the access hit in the DL1.
    pub dl1_hit: bool,
    /// Stall cycles beyond the 1-cycle DL1 hit access.
    pub extra_cycles: u32,
    /// ECC outcome observed at the DL1 (Clean for misses: refilled data is
    /// freshly encoded).
    pub outcome: Outcome,
}

/// Result of a store (as seen by the write-buffer drain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreResponse {
    /// `true` if the store hit in the DL1.
    pub dl1_hit: bool,
    /// Cycles the store occupies the DL1/bus beyond a single-cycle DL1 write.
    pub extra_cycles: u32,
}

/// The per-core memory system.
#[derive(Debug)]
pub struct MemorySystem {
    config: HierarchyConfig,
    dl1: Cache,
    l2: Cache,
    bus: Bus,
    memory: MainMemory,
    stats: MemStats,
    /// Uncorrectable DL1 errors on dirty data (unrecoverable in a WB DL1).
    unrecoverable_errors: u64,
    /// Uncorrectable DL1 errors recovered by refetching from L2 (WT DL1).
    recovered_by_refetch: u64,
    /// Optional capture hook for hierarchy-level trace events (line fills,
    /// writebacks).  `None` by default: emission is a single branch.
    sink: Option<Box<dyn TraceSink>>,
    /// Optional per-fault lifecycle log (see [`crate::forensics`]).  `None`
    /// by default: every hook is a single branch on the disabled path.
    forensics: Option<Box<ForensicsLog>>,
}

impl MemorySystem {
    /// Builds an empty memory system.
    ///
    /// # Panics
    ///
    /// Panics if either cache configuration is invalid.
    #[must_use]
    pub fn new(config: HierarchyConfig) -> Self {
        MemorySystem {
            dl1: Cache::new(config.dl1),
            l2: Cache::new(config.l2),
            bus: Bus::new(config.bus_latency),
            memory: MainMemory::new(config.memory_latency),
            stats: MemStats::new(),
            unrecoverable_errors: 0,
            recovered_by_refetch: 0,
            sink: None,
            forensics: None,
            config,
        }
    }

    /// Turns on fault forensics: every injected fault gets a lifecycle
    /// record (strike → latent residency → first activation → outcome),
    /// stamped with simulation cycles.  Enabling forensics changes no
    /// architectural or timing behaviour — only observation.
    pub fn enable_forensics(&mut self) {
        if self.forensics.is_none() {
            self.forensics = Some(Box::default());
        }
        self.dl1.enable_journal();
    }

    /// Closes all still-latent fault records and takes the cell's forensics,
    /// or `None` when forensics was never enabled.  Call after
    /// [`MemorySystem::drain_to_memory`] so end-of-run flush activations are
    /// included.
    pub fn take_forensics(&mut self) -> Option<CellForensics> {
        self.forensics_drain_journal();
        self.forensics.as_deref_mut().map(ForensicsLog::finish)
    }

    fn forensics_tick(&mut self, now: u64) {
        if let Some(log) = self.forensics.as_deref_mut() {
            log.tick(now);
        }
    }

    /// Moves journalled cache events (strikes, metadata consequences) into
    /// the forensics log.  Called after every access and injection so event
    /// activation cycles equal the triggering access's memory clock.
    fn forensics_drain_journal(&mut self) {
        if let Some(log) = self.forensics.as_deref_mut() {
            for event in self.dl1.drain_journal() {
                log.apply(event);
            }
        }
    }

    /// Classifies pending data faults at `address` against the decode a load
    /// observed (first-activation-wins).
    fn forensics_read(&mut self, address: u32, value: u32, outcome: Outcome) {
        if let Some(log) = self.forensics.as_deref_mut() {
            if log.pending_at(address) {
                log.activate_data(
                    address,
                    ActivationKind::Read,
                    DataObservation {
                        value,
                        uncorrectable: outcome.is_uncorrectable(),
                        corrected: outcome.is_corrected(),
                        kept_mask: 0xF,
                    },
                );
            }
        }
    }

    /// Classifies pending data faults a store is about to merge into, using
    /// a non-destructive probe of the word *before* the write re-encodes it.
    /// Bytes the store overwrites cannot carry SDC; a full-word overwrite
    /// masks the fault outright.
    fn forensics_store_probe(&mut self, address: u32, byte_mask: u8) {
        let Some(log) = self.forensics.as_deref_mut() else {
            return;
        };
        if !log.pending_at(address) {
            return;
        }
        let Some((value, outcome)) = self.dl1.probe_decoded(address) else {
            // Not resident: the store miss path (allocate or forward) never
            // touches the struck copy; the fill hook settles the record.
            return;
        };
        let kept_mask = !byte_mask & 0xF;
        let observation = if kept_mask == 0 {
            DataObservation {
                value,
                uncorrectable: false,
                corrected: false,
                kept_mask: 0,
            }
        } else {
            DataObservation {
                value,
                uncorrectable: outcome.is_uncorrectable(),
                corrected: outcome.is_corrected(),
                kept_mask,
            }
        };
        log.activate_data(address, ActivationKind::Write, observation);
    }

    /// Settles pending data faults a DL1 fill is about to displace: faults in
    /// a dirty victim activate on the writeback drain (probed *before* the
    /// eviction decodes and discards the line); faults in a clean victim
    /// evaporate; stale records inside the filled line's range (their struck
    /// incarnation left the cache clean earlier) are masked by the fresh
    /// data.
    fn forensics_evict_probe(&mut self, address: u32) {
        let line_bytes = self.config.dl1.line_bytes;
        let fill_base = self.dl1.line_base(address);
        let Some(log) = self.forensics.as_deref_mut() else {
            return;
        };
        if !log.has_pending_data() {
            return;
        }
        if let Some(victim_base) = self.dl1.victim_probe(address) {
            let dirty = self.dl1.coherence_state(victim_base).is_dirty();
            for pending_address in log.pending_in_line(victim_base, line_bytes) {
                if !dirty {
                    log.evaporate_data(pending_address);
                    continue;
                }
                if let Some((value, outcome)) = self.dl1.probe_decoded(pending_address) {
                    log.activate_data(
                        pending_address,
                        ActivationKind::WritebackDrain,
                        DataObservation {
                            value,
                            uncorrectable: outcome.is_uncorrectable(),
                            corrected: outcome.is_corrected(),
                            kept_mask: 0xF,
                        },
                    );
                }
            }
        }
        for pending_address in log.pending_in_line(fill_base, line_bytes) {
            log.evaporate_data(pending_address);
        }
    }

    /// Classifies pending data faults in dirty lines the end-of-run flush is
    /// about to drain.  Faults in clean or non-resident locations stay
    /// latent and close as masked when the log finishes.
    fn forensics_flush_probe(&mut self) {
        let Some(log) = self.forensics.as_deref_mut() else {
            return;
        };
        for pending_address in log.pending_data_addresses() {
            if !self.dl1.coherence_state(pending_address).is_dirty() {
                continue;
            }
            if let Some((value, outcome)) = self.dl1.probe_decoded(pending_address) {
                log.activate_data(
                    pending_address,
                    ActivationKind::WritebackDrain,
                    DataObservation {
                        value,
                        uncorrectable: outcome.is_uncorrectable(),
                        corrected: outcome.is_corrected(),
                        kept_mask: 0xF,
                    },
                );
            }
        }
    }

    /// Attaches a trace sink; the hierarchy emits line-fill and writeback
    /// events into it (full-detail trace recordings).
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detaches and returns the trace sink, if one was attached.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// The hierarchy configuration.
    #[must_use]
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Installs bus interference standing in for the other cores' traffic.
    pub fn set_bus_interference(&mut self, interference: Interference) {
        self.bus.set_interference(interference);
    }

    /// Pre-sizes main memory for a data image of about `words` words.
    pub fn reserve_memory(&mut self, words: usize) {
        self.memory.reserve(words);
    }

    /// Pre-loads a word into main memory (program data image).
    pub fn preload_word(&mut self, address: u32, value: u32) {
        self.memory.poke_word(address, value);
    }

    /// Reads a word from main memory without touching caches or counters
    /// (for checking final results).
    #[must_use]
    pub fn peek_memory(&self, address: u32) -> u32 {
        self.memory.peek_word(address)
    }

    /// Reads the architecturally current value of the aligned word at
    /// `address` — DL1 first, then L2, then memory — without updating any
    /// statistics or timing state.  Used by result-checking code.
    #[must_use]
    pub fn peek_coherent(&self, address: u32) -> u32 {
        if let Some(value) = self.dl1.peek_word(address) {
            return value;
        }
        if let Some(value) = self.l2.peek_word(address) {
            return value;
        }
        self.memory.peek_word(address)
    }

    /// Performs a load of the aligned word containing `address` at cycle
    /// `now`.
    pub fn load_word(&mut self, address: u32, now: u64) -> LoadResponse {
        if self.forensics.is_some() {
            self.forensics_tick(now);
        }
        let response = self.load_word_inner(address, now);
        if self.forensics.is_some() {
            self.forensics_drain_journal();
        }
        response
    }

    fn load_word_inner(&mut self, address: u32, now: u64) -> LoadResponse {
        if let Some(hit) = self.dl1.read_word(address) {
            if hit.outcome.is_usable() {
                if self.forensics.is_some() {
                    self.forensics_read(address, hit.value, hit.outcome);
                }
                return LoadResponse {
                    value: hit.value,
                    dl1_hit: true,
                    extra_cycles: 0,
                    outcome: hit.outcome,
                };
            }
            // The load observed the uncorrectable word: classify before the
            // recovery path invalidates and refills the line.
            if self.forensics.is_some() {
                self.forensics_read(address, hit.value, hit.outcome);
            }
            // Uncorrectable error in the DL1.  Clean lines (always the case in
            // a write-through DL1, and any unmodified line in a write-back
            // one) still have a valid copy below: invalidate and refetch.
            if !hit.dirty {
                self.recovered_by_refetch += 1;
                self.dl1.invalidate(address);
                let (line, extra) = self.fetch_line(self.dl1.line_base(address), now);
                let word_index = ((address & (self.config.dl1.line_bytes - 1)) >> 2) as usize;
                let value = line[word_index];
                self.fill_dl1(address, &line, now);
                return LoadResponse {
                    value,
                    dl1_hit: false,
                    extra_cycles: extra,
                    outcome: hit.outcome,
                };
            }
            // A dirty write-back line holds the only copy: data is lost.
            self.unrecoverable_errors += 1;
            return LoadResponse {
                value: hit.value,
                dl1_hit: true,
                extra_cycles: 0,
                outcome: hit.outcome,
            };
        }
        // DL1 miss: blocking refill from L2 (or memory).
        let base = self.dl1.line_base(address);
        let (line, extra) = self.fetch_line(base, now);
        let word_index = ((address & (self.config.dl1.line_bytes - 1)) >> 2) as usize;
        let value = line[word_index];
        self.fill_dl1(address, &line, now);
        LoadResponse {
            value,
            dl1_hit: false,
            extra_cycles: extra,
            outcome: Outcome::Clean,
        }
    }

    /// Performs a store of `value` (bytes selected by `byte_mask`) to the
    /// aligned word containing `address` at cycle `now`.
    pub fn store_word_masked(
        &mut self,
        address: u32,
        value: u32,
        byte_mask: u8,
        now: u64,
    ) -> StoreResponse {
        if self.forensics.is_some() {
            self.forensics_tick(now);
            self.forensics_store_probe(address, byte_mask);
        }
        let response = self.store_word_masked_inner(address, value, byte_mask, now);
        if self.forensics.is_some() {
            self.forensics_drain_journal();
        }
        response
    }

    fn store_word_masked_inner(
        &mut self,
        address: u32,
        value: u32,
        byte_mask: u8,
        now: u64,
    ) -> StoreResponse {
        match self.config.dl1.write_policy {
            WritePolicy::WriteBack => {
                if self.dl1.write_word_masked(address, value, byte_mask) {
                    return StoreResponse {
                        dl1_hit: true,
                        extra_cycles: 0,
                    };
                }
                // Write miss.
                match self.config.dl1.allocate_policy {
                    AllocatePolicy::WriteAllocate => {
                        let base = self.dl1.line_base(address);
                        let (line, extra) = self.fetch_line(base, now);
                        self.fill_dl1(address, &line, now);
                        let wrote = self.dl1.write_word_masked(address, value, byte_mask);
                        debug_assert!(wrote, "line was just filled");
                        StoreResponse {
                            dl1_hit: false,
                            extra_cycles: extra,
                        }
                    }
                    AllocatePolicy::NoWriteAllocate => {
                        let extra = self.store_to_l2(address, value, byte_mask, now);
                        StoreResponse {
                            dl1_hit: false,
                            extra_cycles: extra,
                        }
                    }
                }
            }
            WritePolicy::WriteThrough => {
                // Update the DL1 copy if present (stays clean), and always
                // propagate over the bus to the L2.
                let dl1_hit = self.dl1.write_word_masked(address, value, byte_mask);
                let extra = self.store_to_l2(address, value, byte_mask, now);
                StoreResponse {
                    dl1_hit,
                    extra_cycles: extra,
                }
            }
        }
    }

    /// Full-word store convenience wrapper.
    pub fn store_word(&mut self, address: u32, value: u32, now: u64) -> StoreResponse {
        self.store_word_masked(address, value, 0xF, now)
    }

    /// Fetches a whole DL1 line from the L2 (refilling the L2 from memory if
    /// needed), returning the line data and the stall penalty.
    fn fetch_line(&mut self, base: u32, now: u64) -> (Vec<u32>, u32) {
        let words = self.config.dl1.words_per_line();
        let grant = self.bus.round_trip(now);
        self.stats.bus_transactions += 1;
        self.stats.bus_wait_cycles += grant.wait_cycles;

        let mut extra = 2 * self.config.bus_latency + self.config.l2_latency;
        extra += u32::try_from(grant.wait_cycles).unwrap_or(u32::MAX);

        if !self.l2.probe(base) {
            // L2 miss: refill the L2 line from main memory first.
            extra += self.config.memory_latency;
            self.stats.memory_accesses += 1;
            let l2_base = self.l2.line_base(base);
            if let Some(sink) = &mut self.sink {
                sink.record_line_fill(MemLevel::L2, l2_base);
            }
            let l2_words = self.config.l2.words_per_line();
            let line = self.memory.read_line(l2_base, l2_words);
            if let Some(evicted) = self.l2.fill(l2_base, &line) {
                if evicted.dirty {
                    self.memory.write_line(evicted.base_address, &evicted.words);
                }
            }
        }

        let line = self.l2.read_line_words(base, words).unwrap_or_else(|| {
            // The DL1 line straddles an L2 line boundary only if the DL1
            // line is larger than the L2 line, which the configurations
            // forbid; fall back to per-word reads defensively.
            (0..words)
                .map(|i| {
                    let word_address = base + 4 * i;
                    match self.l2.read_word(word_address) {
                        Some(hit) => hit.value,
                        None => {
                            self.stats.memory_accesses += 1;
                            self.memory.read_word(word_address)
                        }
                    }
                })
                .collect()
        });
        self.stats.l2 = *self.l2.stats();
        (line, extra)
    }

    /// Installs a fetched line in the DL1, writing back any dirty victim to
    /// the L2 (posted, so it does not add to the requesting load's latency).
    fn fill_dl1(&mut self, address: u32, line: &[u32], now: u64) {
        if self.forensics.is_some() {
            self.forensics_evict_probe(address);
        }
        if let Some(sink) = &mut self.sink {
            sink.record_line_fill(MemLevel::Dl1, self.dl1.line_base(address));
        }
        if let Some(evicted) = self.dl1.fill(address, line) {
            if evicted.dirty {
                self.writeback_to_l2(&evicted, now);
            }
        }
        self.stats.dl1 = *self.dl1.stats();
    }

    fn writeback_to_l2(&mut self, evicted: &EvictedLine, now: u64) {
        if let Some(sink) = &mut self.sink {
            sink.record_writeback(MemLevel::Dl1, evicted.base_address);
        }
        let grant = self.bus.one_way(now);
        self.stats.bus_transactions += 1;
        self.stats.bus_wait_cycles += grant.wait_cycles;
        // Ensure the line is present in the L2 (inclusive-style allocate).
        if !self.l2.probe(evicted.base_address) {
            let l2_base = self.l2.line_base(evicted.base_address);
            let l2_words = self.config.l2.words_per_line();
            self.stats.memory_accesses += 1;
            let line = self.memory.read_line(l2_base, l2_words);
            if let Some(victim) = self.l2.fill(l2_base, &line) {
                if victim.dirty {
                    self.memory.write_line(victim.base_address, &victim.words);
                }
            }
        }
        for (i, &word) in evicted.words.iter().enumerate() {
            self.l2
                .write_word(evicted.base_address + 4 * i as u32, word);
        }
        self.stats.l2 = *self.l2.stats();
    }

    /// Propagates a write-through / no-allocate store to the L2, returning
    /// the occupancy cost in cycles.
    fn store_to_l2(&mut self, address: u32, value: u32, byte_mask: u8, now: u64) -> u32 {
        let grant = self.bus.one_way(now);
        self.stats.bus_transactions += 1;
        self.stats.bus_wait_cycles += grant.wait_cycles;
        let mut extra = self.config.bus_latency + self.config.l2_latency;
        extra += u32::try_from(grant.wait_cycles).unwrap_or(u32::MAX);
        if !self.l2.write_word_masked(address, value, byte_mask) {
            // L2 write miss: allocate (the L2 is write-back/write-allocate).
            extra += self.config.memory_latency;
            self.stats.memory_accesses += 1;
            let l2_base = self.l2.line_base(address);
            let l2_words = self.config.l2.words_per_line();
            let line = self.memory.read_line(l2_base, l2_words);
            if let Some(victim) = self.l2.fill(l2_base, &line) {
                if victim.dirty {
                    self.memory.write_line(victim.base_address, &victim.words);
                }
            }
            let wrote = self.l2.write_word_masked(address, value, byte_mask);
            debug_assert!(wrote, "L2 line was just filled");
        }
        self.stats.l2 = *self.l2.stats();
        extra
    }

    /// Flushes all dirty state (DL1 → L2 → memory) so the memory image holds
    /// the final architectural values, and returns that image's checksum.
    pub fn drain_to_memory(&mut self) -> u64 {
        if self.forensics.is_some() {
            self.forensics_flush_probe();
        }
        let dirty_dl1 = self.dl1.flush_dirty();
        for line in &dirty_dl1 {
            self.writeback_to_l2(line, 0);
        }
        for line in self.l2.flush_dirty() {
            if let Some(sink) = &mut self.sink {
                sink.record_writeback(MemLevel::L2, line.base_address);
            }
            self.memory.write_line(line.base_address, &line.words);
        }
        self.stats.dl1 = *self.dl1.stats();
        self.stats.l2 = *self.l2.stats();
        if self.forensics.is_some() {
            self.forensics_drain_journal();
        }
        self.memory.checksum()
    }

    /// Injects a bit-flip plan into the DL1 word at `address`, if resident.
    pub fn inject_dl1_fault_at(&mut self, address: u32, plan: &FlipPlan) -> bool {
        let struck = self.dl1.inject_fault(address, plan);
        if self.forensics.is_some() {
            self.forensics_drain_journal();
        }
        struck
    }

    /// Injects a random fault into the DL1 following the campaign's target
    /// and strike pattern, returning the struck address (or `None` if the
    /// DL1 holds nothing to strike).  Data strikes hit a random resident
    /// word's data/check bits; metadata strikes (see [`FaultTarget`]) flip a
    /// MESI state bit or tag bit of a random resident line.
    pub fn inject_random_dl1_fault(
        &mut self,
        injector: &mut ErrorInjector,
        config: &FaultCampaignConfig,
    ) -> Option<u32> {
        let struck = inject_random_cache_fault(&mut self.dl1, injector, config);
        if self.forensics.is_some() {
            self.forensics_drain_journal();
        }
        struck
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        let mut stats = self.stats;
        stats.dl1 = *self.dl1.stats();
        stats.l2 = *self.l2.stats();
        stats
    }

    /// Direct access to the DL1 (inspection in tests / campaigns).
    #[must_use]
    pub fn dl1(&self) -> &Cache {
        &self.dl1
    }

    /// Direct access to the L2.
    #[must_use]
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Uncorrectable DL1 errors that hit dirty data (unrecoverable).
    #[must_use]
    pub fn unrecoverable_errors(&self) -> u64 {
        self.unrecoverable_errors
    }

    /// Uncorrectable DL1 errors recovered by refetching from the L2.
    #[must_use]
    pub fn recovered_by_refetch(&self) -> u64 {
        self.recovered_by_refetch
    }

    /// Total bus transactions issued so far.
    #[must_use]
    pub fn bus_transactions(&self) -> u64 {
        self.bus.transactions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use laec_ecc::CodeKind;

    fn wb_system() -> MemorySystem {
        MemorySystem::new(HierarchyConfig::ngmp_write_back())
    }

    fn wt_system() -> MemorySystem {
        MemorySystem::new(HierarchyConfig::ngmp_write_through())
    }

    #[test]
    fn cold_load_misses_then_hits() {
        let mut system = wb_system();
        system.preload_word(0x1000, 0xAABB_CCDD);
        let miss = system.load_word(0x1000, 0);
        assert!(!miss.dl1_hit);
        assert_eq!(miss.value, 0xAABB_CCDD);
        assert_eq!(miss.extra_cycles, system.config().memory_penalty());
        let hit = system.load_word(0x1000, 100);
        assert!(hit.dl1_hit);
        assert_eq!(hit.extra_cycles, 0);
        assert_eq!(hit.value, 0xAABB_CCDD);
        // Second access to the same line, different word: spatial locality.
        let hit = system.load_word(0x1004, 101);
        assert!(hit.dl1_hit);
    }

    #[test]
    fn l2_hit_is_cheaper_than_memory() {
        let mut system = wb_system();
        system.preload_word(0x2000, 7);
        let first = system.load_word(0x2000, 0);
        assert_eq!(first.extra_cycles, system.config().memory_penalty());
        // Evict the DL1 line by touching enough conflicting lines (DL1 has
        // 128 sets * 32 B = 4 KB per way; 4 ways -> 5 conflicting lines).
        for i in 1..=4 {
            system.load_word(0x2000 + i * 4096, 10 * u64::from(i));
        }
        assert!(!system.dl1().probe(0x2000));
        let refetch = system.load_word(0x2000, 1000);
        assert!(!refetch.dl1_hit);
        assert_eq!(refetch.value, 7);
        assert_eq!(refetch.extra_cycles, system.config().l2_hit_penalty());
    }

    #[test]
    fn write_back_store_hits_are_local_and_dirty() {
        let mut system = wb_system();
        system.preload_word(0x3000, 1);
        system.load_word(0x3000, 0);
        let bus_before = system.bus_transactions();
        let response = system.store_word(0x3000, 99, 10);
        assert!(response.dl1_hit);
        assert_eq!(response.extra_cycles, 0);
        assert_eq!(
            system.bus_transactions(),
            bus_before,
            "WB store hit stays on-core"
        );
        assert_eq!(system.dl1().dirty_lines(), 1);
        assert_eq!(system.load_word(0x3000, 20).value, 99);
    }

    #[test]
    fn write_back_store_miss_allocates() {
        let mut system = wb_system();
        let response = system.store_word(0x4000, 5, 0);
        assert!(!response.dl1_hit);
        assert!(response.extra_cycles >= system.config().l2_hit_penalty());
        assert!(system.dl1().probe(0x4000));
        assert_eq!(system.load_word(0x4000, 50).value, 5);
    }

    #[test]
    fn write_through_store_always_uses_the_bus() {
        let mut system = wt_system();
        system.preload_word(0x5000, 0);
        system.load_word(0x5000, 0);
        let bus_before = system.bus_transactions();
        let response = system.store_word(0x5000, 42, 10);
        assert!(response.dl1_hit, "the DL1 copy is updated");
        assert!(
            response.extra_cycles > 0,
            "and the store still travels to the L2"
        );
        assert_eq!(system.bus_transactions(), bus_before + 1);
        assert_eq!(system.dl1().dirty_lines(), 0, "WT lines are never dirty");
        // The L2 received the store.
        assert!(system.l2().probe(0x5000));
    }

    #[test]
    fn wt_traffic_exceeds_wb_traffic_for_store_loops() {
        let mut wb = wb_system();
        let mut wt = wt_system();
        for i in 0..64u32 {
            let address = 0x6000 + 4 * (i % 16);
            wb.store_word(address, i, u64::from(i));
            wt.store_word(address, i, u64::from(i));
        }
        assert!(
            wt.bus_transactions() > 4 * wb.bus_transactions(),
            "every WT store crosses the bus ({} vs {})",
            wt.bus_transactions(),
            wb.bus_transactions()
        );
    }

    #[test]
    fn dirty_eviction_writes_back_and_preserves_data() {
        let mut system = wb_system();
        system.store_word(0x7000, 0xDEAD, 0);
        // Evict by filling the set with conflicting lines.
        for i in 1..=4u32 {
            system.load_word(0x7000 + i * 4096, u64::from(i) * 10);
        }
        assert!(!system.dl1().probe(0x7000));
        // The dirty value survived in the L2.
        assert_eq!(system.load_word(0x7000, 1000).value, 0xDEAD);
    }

    #[test]
    fn sub_word_stores_merge() {
        let mut system = wb_system();
        system.preload_word(0x8000, 0x1122_3344);
        system.load_word(0x8000, 0);
        system.store_word_masked(0x8000, 0x0000_00FF, 0b0001, 1);
        assert_eq!(system.load_word(0x8000, 2).value, 0x1122_33FF);
        system.store_word_masked(0x8000, 0xAA00_0000, 0b1000, 3);
        assert_eq!(system.load_word(0x8000, 4).value, 0xAA22_33FF);
    }

    #[test]
    fn drain_to_memory_reaches_main_memory() {
        let mut system = wb_system();
        system.store_word(0x9000, 77, 0);
        assert_eq!(system.peek_memory(0x9000), 0, "still only in the DL1");
        let checksum = system.drain_to_memory();
        assert_eq!(system.peek_memory(0x9000), 77);
        assert_ne!(checksum, MainMemory::new(0).checksum());
    }

    #[test]
    fn peek_coherent_sees_newest_copy_without_stats_noise() {
        let mut system = wb_system();
        system.preload_word(0xA000, 5);
        assert_eq!(system.peek_coherent(0xA000), 5);
        system.store_word(0xA000, 6, 0);
        let stats_before = system.stats();
        assert_eq!(system.peek_coherent(0xA000), 6);
        let stats_after = system.stats();
        assert_eq!(stats_before.dl1.read_hits, stats_after.dl1.read_hits);
    }

    #[test]
    fn injected_single_fault_in_wb_dl1_is_corrected() {
        let mut system = wb_system();
        system.preload_word(0xB000, 0x1234_5678);
        system.load_word(0xB000, 0);
        assert!(system.inject_dl1_fault_at(0xB000, &FlipPlan::single_data(7)));
        let hit = system.load_word(0xB000, 10);
        assert_eq!(hit.value, 0x1234_5678);
        assert!(hit.outcome.is_error() && hit.outcome.is_usable());
        assert_eq!(system.unrecoverable_errors(), 0);
    }

    #[test]
    fn double_fault_on_dirty_wb_data_is_unrecoverable() {
        let mut system = wb_system();
        system.store_word(0xC000, 1, 0);
        assert!(system.inject_dl1_fault_at(0xC000, &FlipPlan::double_data(0, 1)));
        let hit = system.load_word(0xC000, 10);
        assert!(hit.outcome.is_uncorrectable());
        assert_eq!(system.unrecoverable_errors(), 1);
    }

    #[test]
    fn parity_error_in_wt_dl1_recovers_from_l2() {
        let mut system = wt_system();
        system.preload_word(0xD000, 0xFEED);
        system.load_word(0xD000, 0);
        // Parity detects but cannot correct; the WT DL1 refetches from L2.
        assert!(system.inject_dl1_fault_at(0xD000, &FlipPlan::single_data(3)));
        let reload = system.load_word(0xD000, 10);
        assert_eq!(reload.value, 0xFEED, "clean copy restored from the L2");
        assert!(!reload.dl1_hit);
        assert!(reload.extra_cycles > 0, "recovery costs a refetch");
        assert_eq!(system.recovered_by_refetch(), 1);
        assert_eq!(system.unrecoverable_errors(), 0);
        // And the refetched line is clean again.
        assert_eq!(system.load_word(0xD000, 20).outcome, Outcome::Clean);
    }

    #[test]
    fn random_fault_injection_targets_resident_words() {
        let mut system = wb_system();
        let mut injector = ErrorInjector::new(1);
        let config = FaultCampaignConfig::single_bit(1, 1);
        assert!(system
            .inject_random_dl1_fault(&mut injector, &config)
            .is_none());
        system.load_word(0xE000, 0);
        let address = system
            .inject_random_dl1_fault(&mut injector, &config)
            .expect("a resident word exists");
        assert_eq!(
            address & !31,
            0xE000 & !31,
            "strike lands in the resident line"
        );
    }

    #[test]
    fn adjacent_mbu2_on_clean_secded_line_recovers_by_refetch() {
        // A 2-adjacent MBU defeats SEC-DED *correction* (detected double),
        // but the struck line is clean, so the hierarchy invalidates and
        // refetches it — data survives at a latency cost.
        let mut system = wb_system();
        system.preload_word(0xE100, 0x0BAD_F00D);
        system.load_word(0xE100, 0);
        let mut injector = ErrorInjector::new(7);
        let config = FaultCampaignConfig::with_pattern(7, 1, FaultPattern::Adjacent2);
        for round in 0..20u64 {
            let struck = system
                .inject_random_dl1_fault(&mut injector, &config)
                .expect("line is resident");
            let read = system.load_word(struck, 10 * (round + 1));
            assert!(read.outcome.is_uncorrectable(), "double must be detected");
            if struck == 0xE100 {
                assert_eq!(read.value, 0x0BAD_F00D, "refetch restores the data");
            }
        }
        assert_eq!(system.recovered_by_refetch(), 20);
        assert_eq!(system.unrecoverable_errors(), 0);
    }

    #[test]
    fn adjacent_mbu2_on_dirty_secded_line_is_unrecoverable() {
        let mut system = wb_system();
        system.store_word(0xE200, 0xFACE, 0);
        let mut injector = ErrorInjector::new(9);
        let config = FaultCampaignConfig::with_pattern(9, 1, FaultPattern::Adjacent2);
        // The DL1 holds exactly one (dirty) line, so the strike hits it.
        system
            .inject_random_dl1_fault(&mut injector, &config)
            .expect("line is resident");
        // The strike may land in any of the line's words; read them all.
        for i in 0..8u32 {
            let _ = system.load_word((0xE200 & !31) + 4 * i, 100 + u64::from(i));
        }
        assert_eq!(system.unrecoverable_errors(), 1, "dirty data is lost");
    }

    #[test]
    fn unprotected_dl1_lets_faults_through_silently() {
        let mut config = HierarchyConfig::ngmp_write_back();
        config.dl1 = CacheConfig {
            protection: CodeKind::None,
            ..config.dl1
        };
        let mut system = MemorySystem::new(config);
        system.preload_word(0xF000, 100);
        system.load_word(0xF000, 0);
        system.inject_dl1_fault_at(0xF000, &FlipPlan::single_data(0));
        let hit = system.load_word(0xF000, 10);
        assert_eq!(hit.outcome, Outcome::Clean, "no code, no detection");
        assert_eq!(hit.value, 101, "silent corruption");
    }

    #[test]
    fn dl1_lines_wider_than_l2_lines_refill_through_the_fallback_path() {
        // A DL1 line that straddles two L2 lines cannot use the batched
        // L2 line read; the refill must fall back to per-word reads (with
        // memory backfill) instead of indexing past the L2 line.
        let mut config = HierarchyConfig::ngmp_write_back();
        config.dl1.line_bytes = 64;
        config.l2.line_bytes = 32;
        let mut system = MemorySystem::new(config);
        for i in 0..16u32 {
            system.preload_word(0x4000 + 4 * i, 100 + i);
        }
        let response = system.load_word(0x4020, 0);
        assert!(!response.dl1_hit);
        assert_eq!(response.value, 108, "word 8 of the 64 B DL1 line");
        for i in 0..16u32 {
            assert_eq!(
                system.load_word(0x4000 + 4 * i, 10 + u64::from(i)).value,
                100 + i
            );
        }
    }

    #[test]
    fn bus_interference_inflates_miss_latency() {
        let mut quiet = wb_system();
        let mut noisy = wb_system();
        noisy.set_bus_interference(Interference::every_request(8));
        quiet.preload_word(0x1_0000, 1);
        noisy.preload_word(0x1_0000, 1);
        let q = quiet.load_word(0x1_0000, 0);
        let n = noisy.load_word(0x1_0000, 0);
        assert_eq!(n.extra_cycles, q.extra_cycles + 8);
    }
}

//! Flat main memory backing the cache hierarchy.
//!
//! A sparse word-addressed store with a fixed access latency.  Main memory is
//! assumed ECC-protected and error free (the paper's fault model only injects
//! into the DL1, where dirty data is vulnerable).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// SplitMix64-finalised hasher for word addresses.
///
/// The word map is on the refill path of every cache miss and is populated
/// once per campaign cell; the default SipHash costs several times more
/// than the lookups themselves and buys DoS resistance this simulator does
/// not need.  The hash is a pure function of the key, so memory contents —
/// and therefore every checksum — stay deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct WordAddressHasher(u64);

impl Hasher for WordAddressHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 = (self.0 ^ u64::from(byte))
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(23);
        }
    }

    fn write_u32(&mut self, value: u32) {
        // SplitMix64 finaliser: full avalanche in three multiplies.
        let mut x = u64::from(value).wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = x ^ (x >> 31);
    }
}

type WordMap = HashMap<u32, u32, BuildHasherDefault<WordAddressHasher>>;

/// Sparse 32-bit-word main memory.
///
/// ```
/// use laec_mem::MainMemory;
/// let mut memory = MainMemory::new(20);
/// memory.write_word(0x1000, 0xAABB_CCDD);
/// assert_eq!(memory.read_word(0x1000), 0xAABB_CCDD);
/// assert_eq!(memory.read_word(0x2000), 0, "uninitialised memory reads zero");
/// assert_eq!(memory.latency(), 20);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MainMemory {
    words: WordMap,
    latency: u32,
    reads: u64,
    writes: u64,
}

impl MainMemory {
    /// Creates an empty memory with the given access latency (cycles).
    #[must_use]
    pub fn new(latency: u32) -> Self {
        MainMemory {
            words: WordMap::default(),
            latency,
            reads: 0,
            writes: 0,
        }
    }

    /// Access latency in cycles.
    #[must_use]
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Pre-sizes the word map for about `words` entries (e.g. a program's
    /// data image), avoiding rehash churn during loading.
    pub fn reserve(&mut self, words: usize) {
        self.words.reserve(words);
    }

    /// Reads the aligned 32-bit word containing `address` (uninitialised
    /// locations read as zero).
    pub fn read_word(&mut self, address: u32) -> u32 {
        self.reads += 1;
        self.peek_word(address)
    }

    /// Reads without counting an access (for result checking / dumps).
    #[must_use]
    pub fn peek_word(&self, address: u32) -> u32 {
        self.words.get(&(address & !3)).copied().unwrap_or(0)
    }

    /// Writes the aligned 32-bit word containing `address`.
    pub fn write_word(&mut self, address: u32, value: u32) {
        self.writes += 1;
        self.poke_word(address, value);
    }

    /// Writes without counting an access (used for program loading).
    pub fn poke_word(&mut self, address: u32, value: u32) {
        self.words.insert(address & !3, value);
    }

    /// Reads a whole cache line of `words` 32-bit words starting at the
    /// line-aligned `base` address.
    pub fn read_line(&mut self, base: u32, words: u32) -> Vec<u32> {
        (0..words).map(|i| self.read_word(base + 4 * i)).collect()
    }

    /// Writes a whole cache line starting at the line-aligned `base`.
    pub fn write_line(&mut self, base: u32, values: &[u32]) {
        for (i, &value) in values.iter().enumerate() {
            self.write_word(base + 4 * i as u32, value);
        }
    }

    /// Number of word reads served.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of word writes served.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of distinct words ever written.
    #[must_use]
    pub fn footprint_words(&self) -> usize {
        self.words.len()
    }

    /// A deterministic checksum over the whole memory image, used by the
    /// cross-scheme equivalence and fault-injection tests.
    ///
    /// Each (address, value) entry is hashed independently and the
    /// fingerprints are combined with a wrapping sum, so the result is
    /// iteration-order-independent without sorting — this runs once per
    /// campaign cell at drain time.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        self.words
            .iter()
            // Zero-valued words are equivalent to absent words.
            .filter(|(_, &value)| value != 0)
            .fold(0u64, |hash, (&address, &value)| {
                let mut x = (u64::from(address) << 32 | u64::from(value))
                    .wrapping_add(0x9E37_79B9_7F4A_7C15);
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                hash.wrapping_add(x ^ (x >> 31))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_and_alignment() {
        let mut memory = MainMemory::new(10);
        memory.write_word(0x103, 7);
        assert_eq!(
            memory.read_word(0x100),
            7,
            "sub-word addresses alias the aligned word"
        );
        assert_eq!(memory.reads(), 1);
        assert_eq!(memory.writes(), 1);
        assert_eq!(memory.footprint_words(), 1);
    }

    #[test]
    fn lines_round_trip() {
        let mut memory = MainMemory::new(10);
        let line = vec![1, 2, 3, 4, 5, 6, 7, 8];
        memory.write_line(0x200, &line);
        assert_eq!(memory.read_line(0x200, 8), line);
    }

    #[test]
    fn peek_and_poke_do_not_count() {
        let mut memory = MainMemory::new(10);
        memory.poke_word(0x40, 9);
        assert_eq!(memory.peek_word(0x40), 9);
        assert_eq!(memory.reads(), 0);
        assert_eq!(memory.writes(), 0);
    }

    #[test]
    fn checksum_ignores_zero_words_and_is_order_independent() {
        let mut a = MainMemory::new(1);
        a.poke_word(0x10, 5);
        a.poke_word(0x20, 6);
        let mut b = MainMemory::new(1);
        b.poke_word(0x20, 6);
        b.poke_word(0x10, 5);
        b.poke_word(0x30, 0);
        assert_eq!(a.checksum(), b.checksum());
        let mut c = MainMemory::new(1);
        c.poke_word(0x10, 5);
        assert_ne!(a.checksum(), c.checksum());
    }
}

//! Flat main memory backing the cache hierarchy.
//!
//! A sparse word-addressed store with a fixed access latency.  Main memory is
//! assumed ECC-protected and error free (the paper's fault model only injects
//! into the DL1, where dirty data is vulnerable).

use std::collections::HashMap;

/// Sparse 32-bit-word main memory.
///
/// ```
/// use laec_mem::MainMemory;
/// let mut memory = MainMemory::new(20);
/// memory.write_word(0x1000, 0xAABB_CCDD);
/// assert_eq!(memory.read_word(0x1000), 0xAABB_CCDD);
/// assert_eq!(memory.read_word(0x2000), 0, "uninitialised memory reads zero");
/// assert_eq!(memory.latency(), 20);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MainMemory {
    words: HashMap<u32, u32>,
    latency: u32,
    reads: u64,
    writes: u64,
}

impl MainMemory {
    /// Creates an empty memory with the given access latency (cycles).
    #[must_use]
    pub fn new(latency: u32) -> Self {
        MainMemory {
            words: HashMap::new(),
            latency,
            reads: 0,
            writes: 0,
        }
    }

    /// Access latency in cycles.
    #[must_use]
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Reads the aligned 32-bit word containing `address` (uninitialised
    /// locations read as zero).
    pub fn read_word(&mut self, address: u32) -> u32 {
        self.reads += 1;
        self.peek_word(address)
    }

    /// Reads without counting an access (for result checking / dumps).
    #[must_use]
    pub fn peek_word(&self, address: u32) -> u32 {
        self.words.get(&(address & !3)).copied().unwrap_or(0)
    }

    /// Writes the aligned 32-bit word containing `address`.
    pub fn write_word(&mut self, address: u32, value: u32) {
        self.writes += 1;
        self.poke_word(address, value);
    }

    /// Writes without counting an access (used for program loading).
    pub fn poke_word(&mut self, address: u32, value: u32) {
        self.words.insert(address & !3, value);
    }

    /// Reads a whole cache line of `words` 32-bit words starting at the
    /// line-aligned `base` address.
    pub fn read_line(&mut self, base: u32, words: u32) -> Vec<u32> {
        (0..words).map(|i| self.read_word(base + 4 * i)).collect()
    }

    /// Writes a whole cache line starting at the line-aligned `base`.
    pub fn write_line(&mut self, base: u32, values: &[u32]) {
        for (i, &value) in values.iter().enumerate() {
            self.write_word(base + 4 * i as u32, value);
        }
    }

    /// Number of word reads served.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of word writes served.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of distinct words ever written.
    #[must_use]
    pub fn footprint_words(&self) -> usize {
        self.words.len()
    }

    /// A deterministic checksum over the whole memory image, used by the
    /// cross-scheme equivalence and fault-injection tests.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        let mut entries: Vec<(u32, u32)> = self.words.iter().map(|(&a, &v)| (a, v)).collect();
        entries.sort_unstable();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for (address, value) in entries {
            // Zero-valued words are equivalent to absent words.
            if value == 0 {
                continue;
            }
            for byte in address.to_le_bytes().into_iter().chain(value.to_le_bytes()) {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_and_alignment() {
        let mut memory = MainMemory::new(10);
        memory.write_word(0x103, 7);
        assert_eq!(
            memory.read_word(0x100),
            7,
            "sub-word addresses alias the aligned word"
        );
        assert_eq!(memory.reads(), 1);
        assert_eq!(memory.writes(), 1);
        assert_eq!(memory.footprint_words(), 1);
    }

    #[test]
    fn lines_round_trip() {
        let mut memory = MainMemory::new(10);
        let line = vec![1, 2, 3, 4, 5, 6, 7, 8];
        memory.write_line(0x200, &line);
        assert_eq!(memory.read_line(0x200, 8), line);
    }

    #[test]
    fn peek_and_poke_do_not_count() {
        let mut memory = MainMemory::new(10);
        memory.poke_word(0x40, 9);
        assert_eq!(memory.peek_word(0x40), 9);
        assert_eq!(memory.reads(), 0);
        assert_eq!(memory.writes(), 0);
    }

    #[test]
    fn checksum_ignores_zero_words_and_is_order_independent() {
        let mut a = MainMemory::new(1);
        a.poke_word(0x10, 5);
        a.poke_word(0x20, 6);
        let mut b = MainMemory::new(1);
        b.poke_word(0x20, 6);
        b.poke_word(0x10, 5);
        b.poke_word(0x30, 0);
        assert_eq!(a.checksum(), b.checksum());
        let mut c = MainMemory::new(1);
        c.poke_word(0x10, 5);
        assert_ne!(a.checksum(), c.checksum());
    }
}

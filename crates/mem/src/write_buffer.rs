//! The store (write) buffer sitting between the memory stage and the DL1.
//!
//! Paper §III.B: *"The memory stage uses a write buffer where all writes are
//! stored until they can access DL1.  A load that misses in DL1 blocks the
//! pipeline.  All loads stall the memory stage until the write buffer is
//! empty to avoid consistency issues.  Writes also stall the pipeline with
//! backpressure when the write buffer is full, until it gets completely
//! empty."*  This module models exactly that structure; the pipeline decides
//! when to drain it (one entry per cycle when the DL1 port is otherwise
//! idle).
//!
//! Timing note for observers: a buffered store reaches the DL1 at its
//! *drain* cycle, not its issue cycle.  The pipeline therefore stamps the
//! hierarchy access (and any fault-forensics `Write` activation it triggers
//! — see `crate::forensics`) with the drain cycle, which is also the cycle
//! recorded into traces, keeping full simulation and trace replay on the
//! same clock.

use std::collections::VecDeque;

/// One store waiting to access the DL1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingStore {
    /// Word-aligned target address.
    pub address: u32,
    /// Value to merge.
    pub value: u32,
    /// Byte-enable mask (bit *i* enables byte *i* of the aligned word).
    pub byte_mask: u8,
}

/// A FIFO store buffer with "stall until completely empty" backpressure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteBuffer {
    entries: VecDeque<PendingStore>,
    capacity: usize,
    /// When the buffer fills, stores stall until it fully drains.
    draining: bool,
    enqueues: u64,
    full_stalls: u64,
}

impl WriteBuffer {
    /// Creates a buffer with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "write buffer needs at least one entry");
        WriteBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            draining: false,
            enqueues: 0,
            full_stalls: 0,
        }
    }

    /// Number of queued stores.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no stores are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when the buffer cannot accept another store this cycle, either
    /// because it is full or because it is in backpressure drain mode.
    #[must_use]
    pub fn must_stall_store(&self) -> bool {
        self.draining || self.entries.len() >= self.capacity
    }

    /// Capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Tries to accept a store.  Returns `true` if accepted; `false` means
    /// the pipeline must stall (backpressure) and retry next cycle.
    pub fn push(&mut self, store: PendingStore) -> bool {
        if self.must_stall_store() {
            self.full_stalls += 1;
            if self.entries.len() >= self.capacity {
                self.draining = true;
            }
            return false;
        }
        self.entries.push_back(store);
        self.enqueues += 1;
        if self.entries.len() >= self.capacity {
            // Hitting capacity triggers the "until it gets completely empty"
            // backpressure mode of the NGMP write buffer.
            self.draining = true;
        }
        true
    }

    /// Pops the oldest store for the DL1 to consume (called by the pipeline
    /// when the DL1 port is free).
    pub fn pop(&mut self) -> Option<PendingStore> {
        let store = self.entries.pop_front();
        if self.entries.is_empty() {
            self.draining = false;
        }
        store
    }

    /// Oldest entry without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<&PendingStore> {
        self.entries.front()
    }

    /// `true` if a queued store targets the aligned word at `address`
    /// (loads conservatively wait for the buffer to drain instead of
    /// forwarding, matching the modelled NGMP).
    #[must_use]
    pub fn has_store_to(&self, address: u32) -> bool {
        let target = address & !3;
        self.entries.iter().any(|s| s.address & !3 == target)
    }

    /// Drains every queued store in FIFO order — the effect of a memory
    /// fence / synchronising instruction, which stalls until the buffer has
    /// fully emptied.  Clears full-buffer backpressure as a side effect
    /// (the buffer *did* get completely empty).
    pub fn drain_for_fence(&mut self) -> Vec<PendingStore> {
        self.draining = false;
        self.entries.drain(..).collect()
    }

    /// Total stores accepted.
    #[must_use]
    pub fn enqueues(&self) -> u64 {
        self.enqueues
    }

    /// Total rejected pushes (full-buffer stalls).
    #[must_use]
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }
}

impl Default for WriteBuffer {
    fn default() -> Self {
        WriteBuffer::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(address: u32) -> PendingStore {
        PendingStore {
            address,
            value: address ^ 0xFFFF_FFFF,
            byte_mask: 0xF,
        }
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut buffer = WriteBuffer::new(4);
        assert!(buffer.is_empty());
        for i in 0..3 {
            assert!(buffer.push(store(i * 4)));
        }
        assert_eq!(buffer.len(), 3);
        assert_eq!(buffer.peek().unwrap().address, 0);
        assert_eq!(buffer.pop().unwrap().address, 0);
        assert_eq!(buffer.pop().unwrap().address, 4);
        assert_eq!(buffer.pop().unwrap().address, 8);
        assert!(buffer.pop().is_none());
        assert_eq!(buffer.enqueues(), 3);
    }

    #[test]
    fn backpressure_lasts_until_completely_empty() {
        let mut buffer = WriteBuffer::new(2);
        assert!(buffer.push(store(0)));
        assert!(buffer.push(store(4)));
        // Full: further stores stall.
        assert!(buffer.must_stall_store());
        assert!(!buffer.push(store(8)));
        assert_eq!(buffer.full_stalls(), 1);
        // Draining one entry is not enough: the NGMP drains completely.
        buffer.pop();
        assert!(buffer.must_stall_store());
        assert!(!buffer.push(store(8)));
        buffer.pop();
        // Now empty: stores flow again.
        assert!(!buffer.must_stall_store());
        assert!(buffer.push(store(8)));
    }

    #[test]
    fn load_conflict_detection_uses_word_addresses() {
        let mut buffer = WriteBuffer::new(4);
        buffer.push(PendingStore {
            address: 0x1004,
            value: 1,
            byte_mask: 0b0010,
        });
        assert!(buffer.has_store_to(0x1004));
        assert!(buffer.has_store_to(0x1006), "same aligned word");
        assert!(!buffer.has_store_to(0x1008));
    }

    #[test]
    fn default_capacity_matches_ngmp_model() {
        assert_eq!(WriteBuffer::default().capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_is_rejected() {
        let _ = WriteBuffer::new(0);
    }
}

//! Per-fault lifecycle forensics: strike → latent residency → first
//! activation → classified outcome.
//!
//! The paper's central claim is about *when* an error is caught — look-ahead
//! correction trades detection latency against pipeline cost — so the
//! forensics layer records, for every injected fault, the simulation cycle of
//! the strike, the cycle and kind of the first access that architecturally
//! touches the damaged storage, and what the machinery made of it.
//!
//! Everything here is stamped with **simulation cycles**, never wall-clock,
//! and every record is derived from the same deterministic access stream that
//! already produces byte-identical campaign counters.  Forensics therefore
//! inherits the repo's byte-identity contract: the same records come out for
//! any worker thread count, and for full-sim vs trace-backed replay of the
//! same cell.
//!
//! The log is `Option`-gated on [`crate::MemorySystem`] (like `Obs` in
//! `laec_obs`): when disabled the hot paths pay one `is_some()` branch and
//! nothing else.
//!
//! ## Classification rules
//!
//! Data faults capture the *pre-strike* decoded word value (the ground
//! truth), so the first activation can distinguish a genuinely silent
//! corruption from an ineffective strike:
//!
//! | observation at first activation              | outcome    |
//! |----------------------------------------------|------------|
//! | decode uncorrectable                         | `Detected` |
//! | decode usable but value ≠ ground truth       | `Sdc`      |
//! | decode corrected and value == ground truth   | `Corrected`|
//! | decode clean and value == ground truth       | `Masked`   |
//!
//! The `Sdc` row covers both unprotected reads of flipped bits and
//! *miscorrections* (a multi-bit pattern aliasing to a valid single-bit
//! syndrome).  Metadata faults (state/tag) are classified from the cache's
//! own corruption bookkeeping: a stale read of a shadowed line is
//! `StaleMetadataRead`, a dirty line whose writeback never drains is
//! `LostWriteback`, and a corruption that is healed or retired without
//! consequence is `Masked`.  Faults still latent when the cell drains are
//! closed as `Masked` with no activation.

use crate::fault::FaultTarget;

/// The first architectural access that touched a damaged location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ActivationKind {
    /// A demand load decoded the word (or consulted the corrupted metadata).
    Read,
    /// A store probed the word before merging into it.
    Write,
    /// An eviction or end-of-run flush drained the line toward L2/memory.
    WritebackDrain,
    /// A coherence snoop consulted the line (reserved for the SMP engine;
    /// the uniprocessor hierarchy never emits it).
    Snoop,
}

impl ActivationKind {
    /// Stable snake_case label used in reports and histograms.
    pub fn label(self) -> &'static str {
        match self {
            ActivationKind::Read => "read",
            ActivationKind::Write => "write",
            ActivationKind::WritebackDrain => "writeback_drain",
            ActivationKind::Snoop => "snoop",
        }
    }
}

/// Terminal classification of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultOutcome {
    /// The fault never architecturally mattered: overwritten, evicted clean,
    /// ineffective (e.g. a check-bit flip under `CodeKind::None`), or still
    /// latent at end of run.
    Masked,
    /// The code repaired the word and the consumer saw the true value.
    Corrected,
    /// The code flagged the word uncorrectable (the machine can recover by
    /// refetch when the line is clean, or must signal DUE when dirty).
    Detected,
    /// Silent data corruption: a consumer observed a wrong value with no
    /// error signal — including miscorrections.
    Sdc,
    /// A metadata strike hid a dirty line from the writeback path.
    LostWriteback,
    /// A metadata strike made a load consume a shadowed stale line.
    StaleMetadataRead,
}

impl FaultOutcome {
    /// Stable snake_case label used in reports and histograms.
    pub fn label(self) -> &'static str {
        match self {
            FaultOutcome::Masked => "masked",
            FaultOutcome::Corrected => "corrected",
            FaultOutcome::Detected => "detected",
            FaultOutcome::Sdc => "sdc",
            FaultOutcome::LostWriteback => "lost_writeback",
            FaultOutcome::StaleMetadataRead => "stale_metadata_read",
        }
    }

    /// Every outcome, in the canonical report order.
    pub fn all() -> [FaultOutcome; 6] {
        [
            FaultOutcome::Masked,
            FaultOutcome::Corrected,
            FaultOutcome::Detected,
            FaultOutcome::Sdc,
            FaultOutcome::LostWriteback,
            FaultOutcome::StaleMetadataRead,
        ]
    }
}

/// One fault's closed lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Which structure the strike hit.
    pub target: FaultTarget,
    /// Word address for data strikes; line base address for metadata strikes.
    pub address: u32,
    /// Simulation cycle of the strike (the memory clock at injection).
    pub strike_cycle: u64,
    /// Cycle of the first activation, `None` if the fault evaporated or was
    /// still latent at end of run.
    pub activation_cycle: Option<u64>,
    /// What kind of access first touched the damage.
    pub activation: Option<ActivationKind>,
    /// Terminal classification.
    pub outcome: FaultOutcome,
}

impl FaultRecord {
    /// Detection latency in cycles (activation − strike), when activated.
    pub fn latency(&self) -> Option<u64> {
        self.activation_cycle
            .map(|cycle| cycle.saturating_sub(self.strike_cycle))
    }
}

/// The closed forensics record set for one campaign cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellForensics {
    /// All records, canonically sorted by
    /// (strike_cycle, address, target, activation_cycle, outcome).
    pub records: Vec<FaultRecord>,
}

impl CellForensics {
    /// True when the cell recorded no faults.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Per-outcome tallies in canonical order (zero entries included).
    pub fn outcome_tallies(&self) -> [(&'static str, u64); 6] {
        let mut tallies = FaultOutcome::all().map(|outcome| (outcome.label(), 0u64));
        for record in &self.records {
            for slot in tallies.iter_mut() {
                if slot.0 == record.outcome.label() {
                    slot.1 += 1;
                }
            }
        }
        tallies
    }
}

/// Events the cache journals for the forensics log when journaling is on.
///
/// The cache does not know about pending forensics records; it only reports
/// what happened, in program order, and [`ForensicsLog::apply`] matches the
/// events against open records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CacheEvent {
    /// A data strike landed on `address`.  `true_value` is the pre-strike
    /// decoded word when it was decodable (ground truth for SDC detection).
    DataStrike {
        address: u32,
        true_value: Option<u32>,
    },
    /// A metadata strike landed on the line based at `base`.
    MetaStrike { base: u32, target: FaultTarget },
    /// A journalled metadata corruption on the line based at `base` resolved.
    /// `activation` is `None` when the corruption evaporated (healed or
    /// retired without consequence).
    MetaOutcome {
        base: u32,
        outcome: FaultOutcome,
        activation: Option<ActivationKind>,
    },
}

#[derive(Debug, Clone, Copy)]
struct PendingData {
    address: u32,
    strike_cycle: u64,
    true_value: Option<u32>,
}

#[derive(Debug, Clone, Copy)]
struct PendingMeta {
    base: u32,
    strike_cycle: u64,
    target: FaultTarget,
}

/// The live forensics state carried by an enabled memory system.
#[derive(Debug, Default)]
pub(crate) struct ForensicsLog {
    /// Memory clock: the max cycle stamp seen on any load/store.  Strikes are
    /// injected between commits and carry no cycle of their own, so they are
    /// stamped with this clock — which replays identically because the
    /// trace-backed engine re-issues the same (event, cycle) stream.
    clock: u64,
    pending_data: Vec<PendingData>,
    pending_meta: Vec<PendingMeta>,
    records: Vec<FaultRecord>,
}

impl ForensicsLog {
    /// Advances the memory clock; call with the cycle of every load/store.
    pub(crate) fn tick(&mut self, now: u64) {
        self.clock = self.clock.max(now);
    }

    /// True when any data-fault record is still open.
    pub(crate) fn has_pending_data(&self) -> bool {
        !self.pending_data.is_empty()
    }

    /// True when a data-fault record is open at this word address.
    pub(crate) fn pending_at(&self, address: u32) -> bool {
        self.pending_data.iter().any(|p| p.address == address)
    }

    /// Word addresses of all open data-fault records.
    pub(crate) fn pending_data_addresses(&self) -> Vec<u32> {
        self.pending_data.iter().map(|p| p.address).collect()
    }

    /// Word addresses of open data-fault records inside a line.
    pub(crate) fn pending_in_line(&self, base: u32, line_bytes: u32) -> Vec<u32> {
        self.pending_data
            .iter()
            .filter(|p| p.address.wrapping_sub(base) < line_bytes)
            .map(|p| p.address)
            .collect()
    }

    /// Applies one journalled cache event.
    pub(crate) fn apply(&mut self, event: CacheEvent) {
        match event {
            CacheEvent::DataStrike {
                address,
                true_value,
            } => self.pending_data.push(PendingData {
                address,
                strike_cycle: self.clock,
                true_value,
            }),
            CacheEvent::MetaStrike { base, target } => self.pending_meta.push(PendingMeta {
                base,
                strike_cycle: self.clock,
                target,
            }),
            CacheEvent::MetaOutcome {
                base,
                outcome,
                activation,
            } => {
                if let Some(at) = self.pending_meta.iter().position(|p| p.base == base) {
                    let pending = self.pending_meta.remove(at);
                    self.records.push(FaultRecord {
                        target: pending.target,
                        address: pending.base,
                        strike_cycle: pending.strike_cycle,
                        activation_cycle: activation.map(|_| self.clock),
                        activation,
                        outcome: pending_meta_outcome(outcome),
                    });
                }
            }
        }
    }

    /// Closes every open data record at `address` using the decode the
    /// activating access observed.
    pub(crate) fn activate_data(
        &mut self,
        address: u32,
        kind: ActivationKind,
        observed: DataObservation,
    ) {
        let clock = self.clock;
        let mut index = 0;
        while index < self.pending_data.len() {
            if self.pending_data[index].address == address {
                let pending = self.pending_data.remove(index);
                let outcome = observed.classify(pending.true_value);
                self.records.push(FaultRecord {
                    target: FaultTarget::Data,
                    address,
                    strike_cycle: pending.strike_cycle,
                    activation_cycle: Some(clock),
                    activation: Some(kind),
                    outcome,
                });
            } else {
                index += 1;
            }
        }
    }

    /// Closes every open data record at `address` as masked with no
    /// activation (the damage evaporated: clean eviction, stale incarnation
    /// replaced by a fresh fill, full overwrite of a non-resident word).
    pub(crate) fn evaporate_data(&mut self, address: u32) {
        let mut index = 0;
        while index < self.pending_data.len() {
            if self.pending_data[index].address == address {
                let pending = self.pending_data.remove(index);
                self.records.push(FaultRecord {
                    target: FaultTarget::Data,
                    address,
                    strike_cycle: pending.strike_cycle,
                    activation_cycle: None,
                    activation: None,
                    outcome: FaultOutcome::Masked,
                });
            } else {
                index += 1;
            }
        }
    }

    /// Closes everything still open as latent-masked and returns the sorted
    /// record set.
    pub(crate) fn finish(&mut self) -> CellForensics {
        let pending_data = std::mem::take(&mut self.pending_data);
        for pending in pending_data {
            self.records.push(FaultRecord {
                target: FaultTarget::Data,
                address: pending.address,
                strike_cycle: pending.strike_cycle,
                activation_cycle: None,
                activation: None,
                outcome: FaultOutcome::Masked,
            });
        }
        let pending_meta = std::mem::take(&mut self.pending_meta);
        for pending in pending_meta {
            self.records.push(FaultRecord {
                target: pending.target,
                address: pending.base,
                strike_cycle: pending.strike_cycle,
                activation_cycle: None,
                activation: None,
                outcome: FaultOutcome::Masked,
            });
        }
        let mut records = std::mem::take(&mut self.records);
        records.sort_by_key(|r| {
            (
                r.strike_cycle,
                r.address,
                r.target.label(),
                r.activation_cycle.unwrap_or(u64::MAX),
                r.outcome,
            )
        });
        CellForensics { records }
    }
}

/// What an activating access saw when it decoded the struck word.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DataObservation {
    /// Decoded value the consumer would use (post-correction).
    pub value: u32,
    /// The decode flagged the word uncorrectable.
    pub uncorrectable: bool,
    /// The decode repaired at least one bit.
    pub corrected: bool,
    /// Byte-enable mask of bytes the consumer actually kept; bytes about to
    /// be overwritten by a store cannot carry SDC.  `0xF` for loads/drains.
    pub kept_mask: u8,
}

impl DataObservation {
    fn classify(self, true_value: Option<u32>) -> FaultOutcome {
        if self.uncorrectable {
            return FaultOutcome::Detected;
        }
        let wrong = match true_value {
            Some(truth) => (self.value ^ truth) & expand_mask(self.kept_mask) != 0,
            // Ground truth unknown (the word was already undecodable before
            // this strike): trust the outcome flags.
            None => false,
        };
        if wrong {
            FaultOutcome::Sdc
        } else if self.corrected {
            FaultOutcome::Corrected
        } else {
            FaultOutcome::Masked
        }
    }
}

fn expand_mask(byte_mask: u8) -> u32 {
    let mut mask = 0u32;
    for byte in 0..4 {
        if byte_mask & (1 << byte) != 0 {
            mask |= 0xFF << (byte * 8);
        }
    }
    mask
}

/// Metadata corruptions never yield data-style outcomes; keep the journal
/// honest if a future site mislabels one.
fn pending_meta_outcome(outcome: FaultOutcome) -> FaultOutcome {
    match outcome {
        FaultOutcome::LostWriteback => FaultOutcome::LostWriteback,
        FaultOutcome::StaleMetadataRead => FaultOutcome::StaleMetadataRead,
        _ => FaultOutcome::Masked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_lifecycle_classifies_sdc_and_corrected() {
        let mut log = ForensicsLog::default();
        log.tick(10);
        log.apply(CacheEvent::DataStrike {
            address: 0x100,
            true_value: Some(42),
        });
        log.apply(CacheEvent::DataStrike {
            address: 0x200,
            true_value: Some(7),
        });
        log.tick(25);
        log.activate_data(
            0x100,
            ActivationKind::Read,
            DataObservation {
                value: 43,
                uncorrectable: false,
                corrected: false,
                kept_mask: 0xF,
            },
        );
        log.tick(40);
        log.activate_data(
            0x200,
            ActivationKind::Read,
            DataObservation {
                value: 7,
                uncorrectable: false,
                corrected: true,
                kept_mask: 0xF,
            },
        );
        let cell = log.finish();
        assert_eq!(cell.records.len(), 2);
        assert_eq!(cell.records[0].outcome, FaultOutcome::Sdc);
        assert_eq!(cell.records[0].latency(), Some(15));
        assert_eq!(cell.records[1].outcome, FaultOutcome::Corrected);
        assert_eq!(cell.records[1].latency(), Some(30));
    }

    #[test]
    fn store_kept_mask_shields_overwritten_bytes() {
        let observed = DataObservation {
            value: 0x1111_1144,
            uncorrectable: false,
            corrected: false,
            kept_mask: 0x0E,
        };
        // The flipped low byte is about to be overwritten: not SDC.
        assert_eq!(observed.classify(Some(0x1111_1142)), FaultOutcome::Masked);
        let observed = DataObservation {
            kept_mask: 0x0F,
            ..observed
        };
        assert_eq!(observed.classify(Some(0x1111_1142)), FaultOutcome::Sdc);
    }

    #[test]
    fn meta_lifecycle_matches_fifo_per_base() {
        let mut log = ForensicsLog::default();
        log.tick(5);
        log.apply(CacheEvent::MetaStrike {
            base: 0x400,
            target: FaultTarget::State,
        });
        log.tick(90);
        log.apply(CacheEvent::MetaOutcome {
            base: 0x400,
            outcome: FaultOutcome::LostWriteback,
            activation: Some(ActivationKind::WritebackDrain),
        });
        // Unmatched outcome events are dropped.
        log.apply(CacheEvent::MetaOutcome {
            base: 0x800,
            outcome: FaultOutcome::StaleMetadataRead,
            activation: Some(ActivationKind::Read),
        });
        let cell = log.finish();
        assert_eq!(cell.records.len(), 1);
        assert_eq!(cell.records[0].outcome, FaultOutcome::LostWriteback);
        assert_eq!(
            cell.records[0].activation,
            Some(ActivationKind::WritebackDrain)
        );
        assert_eq!(cell.records[0].latency(), Some(85));
    }

    #[test]
    fn latent_faults_close_as_masked_without_activation() {
        let mut log = ForensicsLog::default();
        log.tick(3);
        log.apply(CacheEvent::DataStrike {
            address: 0x10,
            true_value: Some(1),
        });
        let cell = log.finish();
        assert_eq!(cell.records[0].outcome, FaultOutcome::Masked);
        assert_eq!(cell.records[0].activation_cycle, None);
        assert_eq!(cell.records[0].latency(), None);
    }

    #[test]
    fn tallies_cover_every_outcome_label() {
        let cell = CellForensics::default();
        let tallies = cell.outcome_tallies();
        assert_eq!(tallies.len(), 6);
        assert!(tallies.iter().all(|(_, count)| *count == 0));
    }
}

//! The memory interface the pipeline drives.
//!
//! `laec_pipeline::Simulator` talks to its data memory exclusively through
//! this trait, so the same pipeline model runs against the uniprocessor
//! [`MemorySystem`] *and* against one core's
//! port of the MESI-coherent multi-core hierarchy in `laec_smp` — the
//! coherent port mirrors the uniprocessor's timing and statistics exactly
//! when no other core shares the system, which is what makes single-core SMP
//! campaign reports byte-identical to the uniprocessor engine.

use laec_ecc::ErrorInjector;

use crate::fault::FaultCampaignConfig;
use crate::forensics::CellForensics;
use crate::hierarchy::{LoadResponse, MemorySystem, StoreResponse};
use crate::stats::MemStats;

/// The per-core data-memory interface: timed loads/stores, end-of-run
/// draining, statistics and fault injection.
pub trait MemoryPort {
    /// Performs a load of the aligned word containing `address` at cycle
    /// `now`.
    fn load_word(&mut self, address: u32, now: u64) -> LoadResponse;

    /// Performs a store of `value` (bytes selected by `byte_mask`) to the
    /// aligned word containing `address` at cycle `now`.
    fn store_word_masked(
        &mut self,
        address: u32,
        value: u32,
        byte_mask: u8,
        now: u64,
    ) -> StoreResponse;

    /// Flushes all dirty state this core is responsible for down to main
    /// memory and returns the memory image's checksum.
    fn drain_to_memory(&mut self) -> u64;

    /// Accumulated per-core statistics.
    fn stats(&self) -> MemStats;

    /// Uncorrectable errors on dirty data (unrecoverable data loss).
    fn unrecoverable_errors(&self) -> u64;

    /// Uncorrectable errors recovered by refetching from the level below.
    fn recovered_by_refetch(&self) -> u64;

    /// Dirty lines silently dropped because of corrupted cache metadata
    /// (MESI state / tag strikes) — a silent-data-corruption class.
    fn lost_writebacks(&self) -> u64 {
        0
    }

    /// Reads served wrong data because of corrupted cache metadata — the
    /// other silent-data-corruption class.
    fn stale_metadata_reads(&self) -> u64 {
        0
    }

    /// Metadata faults injected so far (state/tag strikes).
    fn meta_faults_injected(&self) -> u64 {
        0
    }

    /// Injects one random fault into this core's DL1 following the
    /// campaign's target and strike pattern, returning the struck address
    /// (or `None` if nothing was resident to strike).
    fn inject_random_fault(
        &mut self,
        injector: &mut ErrorInjector,
        config: &FaultCampaignConfig,
    ) -> Option<u32>;

    /// Turns on per-fault lifecycle forensics, if the port supports it.
    /// Ports without forensics (e.g. the coherent SMP port) silently ignore
    /// the request and keep returning `None` from
    /// [`MemoryPort::take_forensics`].
    fn enable_forensics(&mut self) {}

    /// Takes the closed forensics record set, or `None` when forensics was
    /// never enabled (or is unsupported).  Call after
    /// [`MemoryPort::drain_to_memory`].
    fn take_forensics(&mut self) -> Option<CellForensics> {
        None
    }
}

impl MemoryPort for MemorySystem {
    fn load_word(&mut self, address: u32, now: u64) -> LoadResponse {
        MemorySystem::load_word(self, address, now)
    }

    fn store_word_masked(
        &mut self,
        address: u32,
        value: u32,
        byte_mask: u8,
        now: u64,
    ) -> StoreResponse {
        MemorySystem::store_word_masked(self, address, value, byte_mask, now)
    }

    fn drain_to_memory(&mut self) -> u64 {
        MemorySystem::drain_to_memory(self)
    }

    fn stats(&self) -> MemStats {
        MemorySystem::stats(self)
    }

    fn unrecoverable_errors(&self) -> u64 {
        MemorySystem::unrecoverable_errors(self)
    }

    fn recovered_by_refetch(&self) -> u64 {
        MemorySystem::recovered_by_refetch(self)
    }

    fn lost_writebacks(&self) -> u64 {
        self.dl1().lost_writebacks()
    }

    fn stale_metadata_reads(&self) -> u64 {
        self.dl1().stale_reads()
    }

    fn meta_faults_injected(&self) -> u64 {
        self.dl1().meta_faults_injected()
    }

    fn inject_random_fault(
        &mut self,
        injector: &mut ErrorInjector,
        config: &FaultCampaignConfig,
    ) -> Option<u32> {
        self.inject_random_dl1_fault(injector, config)
    }

    fn enable_forensics(&mut self) {
        MemorySystem::enable_forensics(self);
    }

    fn take_forensics(&mut self) -> Option<CellForensics> {
        MemorySystem::take_forensics(self)
    }
}

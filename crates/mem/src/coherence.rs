//! Coherence line states, the snoop interface, and the
//! [`CoherenceProtocol`] decision table with its three implementations
//! (MESI, Dragon, MOESI).
//!
//! Every cache line carries a [`LineState`] instead of separate valid/dirty
//! bits: `Invalid` is the old "not valid", `Modified` is the old "valid +
//! dirty", and the clean-valid state splits into `Exclusive` (no other cache
//! holds the line — a later write needs no bus transaction) and `Shared`
//! (other caches may hold it).  On top of that MESI lattice sit the states
//! the other two protocols need: Dragon's `SharedClean`/`SharedModified`
//! (update-based sharing — writes broadcast the written word instead of
//! invalidating) and MOESI's `Owned` (dirty sharing — the owner supplies
//! readers cache-to-cache without writing the line back).  A uniprocessor
//! hierarchy only ever sees `Invalid`/`Exclusive`/`Modified` — the old
//! valid/dirty lattice — under *every* protocol, so single-core behaviour
//! is bit-identical regardless of the protocol axis.
//!
//! The state is *metadata*: it is stored next to the tag, and — unlike the
//! data words — it is not covered by the DL1's ECC/parity code on the
//! platforms the paper models.  That makes it a fault-injection surface of
//! its own: a flipped state bit can silently drop a dirty line's writeback
//! obligation (`Modified`/`SharedModified`/`Owned` read as clean) and a
//! flipped tag bit makes the line answer for the wrong address.  See
//! [`FaultTarget`](crate::fault::FaultTarget).

use std::fmt;
use std::str::FromStr;

/// A cache line's coherence state: the MESI lattice plus Dragon's two
/// shared states and MOESI's `Owned`, encoded in the (unprotected)
/// metadata bits next to the tag.
///
/// The low two bits keep the historical MESI encoding (I=00, S=01, E=10,
/// M=11) so MESI-only configurations store — and fault campaigns strike —
/// exactly the bits they did before the protocol axis existed; the third
/// bit distinguishes the Dragon/MOESI extension states.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Not present.
    #[default]
    Invalid,
    /// Present in this cache and possibly others; clean (MESI/MOESI).
    Shared,
    /// Present only in this cache; clean (memory below is up to date).
    Exclusive,
    /// Present only in this cache; dirty (this is the only current copy).
    Modified,
    /// Dragon: present in several caches, clean here; writes broadcast
    /// bus updates instead of invalidating.
    SharedClean,
    /// Dragon: present in several caches, dirty here — this copy owns the
    /// writeback obligation for the (update-synchronised) line.
    SharedModified,
    /// MOESI: present in several caches, dirty here — the owner supplies
    /// readers cache-to-cache and writes back on eviction; memory below
    /// stays stale meanwhile.
    Owned,
}

/// Historical alias from the MESI-only era; [`LineState`] is the same type.
pub type MesiState = LineState;

impl LineState {
    /// `true` for any resident state.
    #[must_use]
    pub fn is_valid(self) -> bool {
        self != LineState::Invalid
    }

    /// `true` when this copy owns the line's writeback obligation (it must
    /// be written back on eviction): `Modified`, Dragon's `SharedModified`,
    /// or MOESI's `Owned`.
    #[must_use]
    pub fn is_dirty(self) -> bool {
        matches!(
            self,
            LineState::Modified | LineState::SharedModified | LineState::Owned
        )
    }

    /// The hardware encoding of the state.  The low two bits are the
    /// historical MESI encoding (I=00, S=01, E=10, M=11); bit 2 marks the
    /// Dragon/MOESI extension states (Sc=100, Sm=101, O=110).
    #[must_use]
    pub fn to_bits(self) -> u8 {
        match self {
            LineState::Invalid => 0b000,
            LineState::Shared => 0b001,
            LineState::Exclusive => 0b010,
            LineState::Modified => 0b011,
            LineState::SharedClean => 0b100,
            LineState::SharedModified => 0b101,
            LineState::Owned => 0b110,
        }
    }

    /// Decodes the three-bit encoding (the inverse of
    /// [`LineState::to_bits`]).  The one unused encoding (0b111) decodes to
    /// `Invalid`: hardware state machines treat undefined encodings as "no
    /// line", which is exactly how a fault campaign's stray flip should
    /// land.
    #[must_use]
    pub fn from_bits(bits: u8) -> Self {
        match bits & 0b111 {
            0b001 => LineState::Shared,
            0b010 => LineState::Exclusive,
            0b011 => LineState::Modified,
            0b100 => LineState::SharedClean,
            0b101 => LineState::SharedModified,
            0b110 => LineState::Owned,
            _ => LineState::Invalid,
        }
    }

    /// Stable label used in reports and tests.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LineState::Invalid => "I",
            LineState::Shared => "S",
            LineState::Exclusive => "E",
            LineState::Modified => "M",
            LineState::SharedClean => "Sc",
            LineState::SharedModified => "Sm",
            LineState::Owned => "O",
        }
    }
}

/// What a remote bus transaction observed in (and did to) one snooped cache.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnoopResult {
    /// `true` if the snooped cache held the line.
    pub had_line: bool,
    /// `true` if the snooped copy was dirty (`M`/`Sm`/`O`) — the snooped
    /// cache supplied the line (cache-to-cache intervention) in `supplied`.
    pub was_modified: bool,
    /// `true` if the snoop invalidated the copy (remote write intent).
    pub invalidated: bool,
    /// The line's decoded words, supplied only when the copy was dirty
    /// (the requester and the level below would otherwise read stale data).
    pub supplied: Option<Vec<u32>>,
    /// `true` if any supplied word carried an uncorrectable ECC error: the
    /// intervention forwards data that cannot be trusted.
    pub uncorrectable: bool,
}

/// The bus action a local write hit must take before modifying the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalWriteAction {
    /// No bus action: the copy is already exclusive (`E`/`M`) or absent
    /// (the miss path arbitrates for the bus anyway).
    Silent,
    /// Broadcast a write intent (BusUpgr) that invalidates every remote
    /// copy, then write locally (→ `Modified`).  MESI and MOESI.
    Invalidate,
    /// Broadcast the written word (BusUpd) into every remote copy, then
    /// write locally (→ `SharedModified` while sharers remain, `Modified`
    /// once the broadcast finds none).  Dragon.
    Update,
}

/// The protocol decision table: local access × line state × snooped
/// operation → next state + bus action.
///
/// Implementations are stateless lookup tables; the substrate (per-core
/// caches, the shared bus/L2, the snoop loops) lives in `laec_smp` and
/// consults the table at each decision point.  Everything else — residency,
/// LRU, ECC, writebacks, the fault-injection oracle — is shared by all
/// protocols through the dirty/valid lattice of [`LineState`].
///
/// # Adding a fourth protocol
///
/// A new protocol is one more implementation of this trait (plus a
/// [`ProtocolKind`] variant to name it on the CLI/spec axis).  For example,
/// plain MSI — MESI without the exclusive-clean optimisation — fits in a
/// few lines:
///
/// ```
/// use laec_mem::{CoherenceProtocol, LineState, LocalWriteAction};
///
/// #[derive(Debug)]
/// struct Msi;
///
/// impl CoherenceProtocol for Msi {
///     fn name(&self) -> &'static str {
///         "msi"
///     }
///     fn state_bits(&self) -> u32 {
///         2 // I, S, M only
///     }
///     fn read_fill_state(&self, _sharers: bool) -> LineState {
///         LineState::Shared // no E state: every read fill is Shared
///     }
///     fn snooped_read_next(&self, _state: LineState) -> LineState {
///         LineState::Shared
///     }
///     fn local_write_action(&self, state: LineState) -> LocalWriteAction {
///         match state {
///             // Without E, even a sole clean copy must broadcast.
///             LineState::Shared => LocalWriteAction::Invalidate,
///             _ => LocalWriteAction::Silent,
///         }
///     }
///     fn supplies_through_l2(&self) -> bool {
///         true // like MESI: a dirty supplier refreshes the L2
///     }
///     fn uses_update_bus(&self) -> bool {
///         false
///     }
/// }
///
/// assert_eq!(Msi.read_fill_state(false), LineState::Shared);
/// ```
pub trait CoherenceProtocol: fmt::Debug + Sync {
    /// The protocol's canonical lower-case name (CLI/spec label).
    fn name(&self) -> &'static str;

    /// How many metadata bits a line's state occupies (2 for MESI, 3 for
    /// the protocols using extension states).  `FaultTarget::State`
    /// campaigns flip a uniformly random bit out of exactly this many, so
    /// the strike surface grows with the protocol's state lattice.
    fn state_bits(&self) -> u32;

    /// The state a read miss fills with, given whether the snoop found
    /// remote copies.
    fn read_fill_state(&self, sharers: bool) -> LineState;

    /// The state a resident copy transitions to when it observes a remote
    /// *read* of its line (`state` is valid, never `Invalid`).
    fn snooped_read_next(&self, state: LineState) -> LineState;

    /// The bus action a local write hitting a line in `state` must take.
    fn local_write_action(&self, state: LineState) -> LocalWriteAction;

    /// `true` if a dirty snooped copy refreshes the shared L2 on the same
    /// transaction it supplies (MESI: the owner is downgraded to a clean
    /// state, so the L2 must pick up the dirty data).  `false` when the
    /// supplied line travels cache-to-cache only and the supplier keeps the
    /// writeback obligation (Dragon's `Sm`, MOESI's `O`) — memory below
    /// stays stale until the owner evicts.
    fn supplies_through_l2(&self) -> bool;

    /// `true` for update-based protocols (Dragon): writes to shared lines
    /// broadcast the written word instead of invalidating, and write
    /// misses fetch the line with a plain read before updating.
    fn uses_update_bus(&self) -> bool;
}

/// MESI — the invalidate-based baseline, byte-identical to the behaviour
/// the system had before the protocol axis existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mesi;

impl CoherenceProtocol for Mesi {
    fn name(&self) -> &'static str {
        "mesi"
    }

    fn state_bits(&self) -> u32 {
        2
    }

    fn read_fill_state(&self, sharers: bool) -> LineState {
        if sharers {
            LineState::Shared
        } else {
            LineState::Exclusive
        }
    }

    fn snooped_read_next(&self, _state: LineState) -> LineState {
        // M supplies (and the L2 is refreshed), E/S stay clean: everyone
        // lands in Shared.
        LineState::Shared
    }

    fn local_write_action(&self, state: LineState) -> LocalWriteAction {
        match state {
            LineState::Shared => LocalWriteAction::Invalidate,
            _ => LocalWriteAction::Silent,
        }
    }

    fn supplies_through_l2(&self) -> bool {
        true
    }

    fn uses_update_bus(&self) -> bool {
        false
    }
}

/// Dragon — the update-based protocol: writes to shared lines broadcast
/// the written word (`BusUpd`) into the remote copies instead of
/// invalidating them, so a falsely-shared line never ping-pongs.  The
/// dirty sharer (`SharedModified`) owns the writeback obligation; all
/// copies of a shared line hold identical data because every write is
/// broadcast.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dragon;

impl CoherenceProtocol for Dragon {
    fn name(&self) -> &'static str {
        "dragon"
    }

    fn state_bits(&self) -> u32 {
        3
    }

    fn read_fill_state(&self, sharers: bool) -> LineState {
        if sharers {
            LineState::SharedClean
        } else {
            LineState::Exclusive
        }
    }

    fn snooped_read_next(&self, state: LineState) -> LineState {
        match state {
            // A dirty copy supplies and keeps the writeback obligation.
            LineState::Modified | LineState::SharedModified => LineState::SharedModified,
            _ => LineState::SharedClean,
        }
    }

    fn local_write_action(&self, state: LineState) -> LocalWriteAction {
        match state {
            LineState::SharedClean | LineState::SharedModified => LocalWriteAction::Update,
            _ => LocalWriteAction::Silent,
        }
    }

    fn supplies_through_l2(&self) -> bool {
        false
    }

    fn uses_update_bus(&self) -> bool {
        true
    }
}

/// MOESI — MESI plus the `Owned` state: a dirty copy that observes a
/// remote read supplies the line cache-to-cache and keeps the (dirty)
/// writeback obligation instead of refreshing the L2 — dirty sharing
/// without a writeback.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Moesi;

impl CoherenceProtocol for Moesi {
    fn name(&self) -> &'static str {
        "moesi"
    }

    fn state_bits(&self) -> u32 {
        3
    }

    fn read_fill_state(&self, sharers: bool) -> LineState {
        if sharers {
            LineState::Shared
        } else {
            LineState::Exclusive
        }
    }

    fn snooped_read_next(&self, state: LineState) -> LineState {
        match state {
            // The dirty copy becomes (or stays) the owner.
            LineState::Modified | LineState::Owned => LineState::Owned,
            _ => LineState::Shared,
        }
    }

    fn local_write_action(&self, state: LineState) -> LocalWriteAction {
        match state {
            // An owner's write must still invalidate the clean sharers.
            LineState::Shared | LineState::Owned => LocalWriteAction::Invalidate,
            _ => LocalWriteAction::Silent,
        }
    }

    fn supplies_through_l2(&self) -> bool {
        false
    }

    fn uses_update_bus(&self) -> bool {
        false
    }
}

/// The protocol axis: which [`CoherenceProtocol`] table a system consults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Invalidate-based MESI (the default, and the paper's baseline).
    #[default]
    Mesi,
    /// Update-based Dragon (`Sc`/`Sm` states, bus-update traffic).
    Dragon,
    /// MESI plus the `Owned` state (dirty sharing without writeback).
    Moesi,
}

impl ProtocolKind {
    /// Every kind, for exhaustive round-trip tests and axis enumeration.
    pub const ALL: [ProtocolKind; 3] = [
        ProtocolKind::Mesi,
        ProtocolKind::Dragon,
        ProtocolKind::Moesi,
    ];

    /// The protocol's decision table.
    #[must_use]
    pub fn table(self) -> &'static dyn CoherenceProtocol {
        match self {
            ProtocolKind::Mesi => &Mesi,
            ProtocolKind::Dragon => &Dragon,
            ProtocolKind::Moesi => &Moesi,
        }
    }
}

impl fmt::Display for ProtocolKind {
    /// The canonical label (`mesi`, `dragon`, `moesi`); round-trips through
    /// the [`FromStr`] impl.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.table().name())
    }
}

/// The error of [`ProtocolKind`]'s `FromStr`: the offending label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProtocolError {
    /// The label that named no protocol.
    pub label: String,
}

impl fmt::Display for ParseProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown coherence protocol `{}` (valid: mesi, dragon, moesi)",
            self.label
        )
    }
}

impl std::error::Error for ParseProtocolError {}

impl FromStr for ProtocolKind {
    type Err = ParseProtocolError;

    /// Parses a canonical protocol label (`mesi`, `dragon`, `moesi`).
    fn from_str(label: &str) -> Result<Self, Self::Err> {
        match label {
            "mesi" => Ok(ProtocolKind::Mesi),
            "dragon" => Ok(ProtocolKind::Dragon),
            "moesi" => Ok(ProtocolKind::Moesi),
            _ => Err(ParseProtocolError {
                label: label.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_STATES: [LineState; 7] = [
        LineState::Invalid,
        LineState::Shared,
        LineState::Exclusive,
        LineState::Modified,
        LineState::SharedClean,
        LineState::SharedModified,
        LineState::Owned,
    ];

    #[test]
    fn bit_encoding_round_trips() {
        for state in ALL_STATES {
            assert_eq!(LineState::from_bits(state.to_bits()), state);
        }
        // The one unused encoding decodes as "no line".
        assert_eq!(LineState::from_bits(0b111), LineState::Invalid);
        // Wrap-around: only the low three bits are stored.
        assert_eq!(LineState::from_bits(0b1011), LineState::Modified);
    }

    #[test]
    fn mesi_states_keep_their_historical_two_bit_encoding() {
        assert_eq!(LineState::Invalid.to_bits(), 0b00);
        assert_eq!(LineState::Shared.to_bits(), 0b01);
        assert_eq!(LineState::Exclusive.to_bits(), 0b10);
        assert_eq!(LineState::Modified.to_bits(), 0b11);
    }

    #[test]
    fn dirty_and_valid_follow_the_lattice() {
        assert!(!LineState::Invalid.is_valid());
        assert!(LineState::Shared.is_valid() && !LineState::Shared.is_dirty());
        assert!(LineState::Exclusive.is_valid() && !LineState::Exclusive.is_dirty());
        assert!(LineState::Modified.is_dirty());
        assert!(LineState::SharedClean.is_valid() && !LineState::SharedClean.is_dirty());
        assert!(LineState::SharedModified.is_dirty());
        assert!(LineState::Owned.is_dirty());
        assert_eq!(LineState::Modified.label(), "M");
        assert_eq!(LineState::SharedModified.label(), "Sm");
        assert_eq!(LineState::Owned.label(), "O");
    }

    #[test]
    fn protocol_labels_round_trip_exhaustively() {
        for kind in ProtocolKind::ALL {
            let label = kind.to_string();
            assert_eq!(label.parse::<ProtocolKind>(), Ok(kind), "{label}");
            assert_eq!(kind.table().name(), label);
        }
    }

    #[test]
    fn unknown_protocol_label_is_a_typed_error_naming_the_valid_set() {
        let err = "mosi".parse::<ProtocolKind>().unwrap_err();
        assert_eq!(err.label, "mosi");
        let text = err.to_string();
        assert!(text.contains("`mosi`"), "{text}");
        for valid in ["mesi", "dragon", "moesi"] {
            assert!(text.contains(valid), "{text} should name {valid}");
        }
        assert!("MESI".parse::<ProtocolKind>().is_err(), "labels are exact");
    }

    #[test]
    fn mesi_table_is_the_invalidate_baseline() {
        let table = ProtocolKind::Mesi.table();
        assert_eq!(table.state_bits(), 2);
        assert!(!table.uses_update_bus());
        assert!(table.supplies_through_l2());
        assert_eq!(table.read_fill_state(false), LineState::Exclusive);
        assert_eq!(table.read_fill_state(true), LineState::Shared);
        for state in ALL_STATES {
            let action = table.local_write_action(state);
            if state == LineState::Shared {
                assert_eq!(action, LocalWriteAction::Invalidate);
            } else {
                assert_eq!(action, LocalWriteAction::Silent, "{state:?}");
            }
            if state.is_valid() {
                assert_eq!(table.snooped_read_next(state), LineState::Shared);
            }
        }
    }

    #[test]
    fn dragon_table_updates_instead_of_invalidating() {
        let table = ProtocolKind::Dragon.table();
        assert_eq!(table.state_bits(), 3);
        assert!(table.uses_update_bus());
        assert!(!table.supplies_through_l2());
        assert_eq!(table.read_fill_state(true), LineState::SharedClean);
        assert_eq!(table.read_fill_state(false), LineState::Exclusive);
        assert_eq!(
            table.local_write_action(LineState::SharedClean),
            LocalWriteAction::Update
        );
        assert_eq!(
            table.local_write_action(LineState::SharedModified),
            LocalWriteAction::Update
        );
        // A dirty copy keeps its writeback obligation when snooped.
        assert_eq!(
            table.snooped_read_next(LineState::Modified),
            LineState::SharedModified
        );
        assert_eq!(
            table.snooped_read_next(LineState::Exclusive),
            LineState::SharedClean
        );
        // No state ever takes the invalidate action under Dragon.
        for state in ALL_STATES {
            assert_ne!(
                table.local_write_action(state),
                LocalWriteAction::Invalidate
            );
        }
    }

    #[test]
    fn moesi_table_keeps_dirty_ownership_on_remote_reads() {
        let table = ProtocolKind::Moesi.table();
        assert_eq!(table.state_bits(), 3);
        assert!(!table.uses_update_bus());
        assert!(!table.supplies_through_l2());
        assert_eq!(
            table.snooped_read_next(LineState::Modified),
            LineState::Owned
        );
        assert_eq!(table.snooped_read_next(LineState::Owned), LineState::Owned);
        assert_eq!(
            table.snooped_read_next(LineState::Shared),
            LineState::Shared
        );
        assert_eq!(
            table.local_write_action(LineState::Owned),
            LocalWriteAction::Invalidate
        );
        assert_eq!(
            table.local_write_action(LineState::Shared),
            LocalWriteAction::Invalidate
        );
        assert_eq!(
            table.local_write_action(LineState::Exclusive),
            LocalWriteAction::Silent
        );
    }

    #[test]
    fn uniprocessor_lattice_is_protocol_invariant() {
        // With no sharers ever found, every protocol fills Exclusive, writes
        // silently from E/M, and never takes a bus action — the I/E/M
        // lattice the uniprocessor engine relies on.
        for kind in ProtocolKind::ALL {
            let table = kind.table();
            assert_eq!(table.read_fill_state(false), LineState::Exclusive);
            assert_eq!(
                table.local_write_action(LineState::Exclusive),
                LocalWriteAction::Silent
            );
            assert_eq!(
                table.local_write_action(LineState::Modified),
                LocalWriteAction::Silent
            );
            assert_eq!(
                table.local_write_action(LineState::Invalid),
                LocalWriteAction::Silent
            );
        }
    }
}

//! MESI coherence state and the snoop interface.
//!
//! Every cache line carries a [`MesiState`] instead of separate valid/dirty
//! bits: `Invalid` is the old "not valid", `Modified` is the old "valid +
//! dirty", and the clean-valid state splits into `Exclusive` (no other cache
//! holds the line — a later write needs no bus transaction) and `Shared`
//! (other caches may hold it — a write must first invalidate them).  A
//! uniprocessor hierarchy only ever sees `Invalid`/`Exclusive`/`Modified`,
//! which is exactly the valid/dirty lattice it had before, so single-core
//! behaviour is bit-identical.
//!
//! The state is *metadata*: it is stored next to the tag, and — unlike the
//! data words — it is not covered by the DL1's ECC/parity code on the
//! platforms the paper models.  That makes it a fault-injection surface of
//! its own: a flipped state bit can silently drop a dirty line's writeback
//! obligation (`Modified` read as clean) and a flipped tag bit makes the
//! line answer for the wrong address.  See
//! [`FaultTarget`](crate::fault::FaultTarget).

/// The four MESI states, encoded in two (unprotected) metadata bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum MesiState {
    /// Not present.
    #[default]
    Invalid,
    /// Present in this cache and possibly others; clean.
    Shared,
    /// Present only in this cache; clean (memory below is up to date).
    Exclusive,
    /// Present only in this cache; dirty (this is the only current copy).
    Modified,
}

impl MesiState {
    /// `true` for any resident state.
    #[must_use]
    pub fn is_valid(self) -> bool {
        self != MesiState::Invalid
    }

    /// `true` when the line holds the only up-to-date copy (must be written
    /// back on eviction).
    #[must_use]
    pub fn is_dirty(self) -> bool {
        self == MesiState::Modified
    }

    /// The two-bit hardware encoding of the state (I=00, S=01, E=10, M=11).
    #[must_use]
    pub fn to_bits(self) -> u8 {
        match self {
            MesiState::Invalid => 0b00,
            MesiState::Shared => 0b01,
            MesiState::Exclusive => 0b10,
            MesiState::Modified => 0b11,
        }
    }

    /// Decodes the two-bit encoding (the inverse of [`MesiState::to_bits`]).
    #[must_use]
    pub fn from_bits(bits: u8) -> Self {
        match bits & 0b11 {
            0b01 => MesiState::Shared,
            0b10 => MesiState::Exclusive,
            0b11 => MesiState::Modified,
            _ => MesiState::Invalid,
        }
    }

    /// Stable label used in reports and tests.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MesiState::Invalid => "I",
            MesiState::Shared => "S",
            MesiState::Exclusive => "E",
            MesiState::Modified => "M",
        }
    }
}

/// What a remote bus transaction observed in (and did to) one snooped cache.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnoopResult {
    /// `true` if the snooped cache held the line.
    pub had_line: bool,
    /// `true` if the snooped copy was `Modified` — the snooped cache supplied
    /// the line (cache-to-cache intervention) in `supplied`.
    pub was_modified: bool,
    /// `true` if the snoop invalidated the copy (remote write intent).
    pub invalidated: bool,
    /// The line's decoded words, supplied only when the copy was `Modified`
    /// (the requester and the level below would otherwise read stale data).
    pub supplied: Option<Vec<u32>>,
    /// `true` if any supplied word carried an uncorrectable ECC error: the
    /// intervention forwards data that cannot be trusted.
    pub uncorrectable: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_encoding_round_trips() {
        for state in [
            MesiState::Invalid,
            MesiState::Shared,
            MesiState::Exclusive,
            MesiState::Modified,
        ] {
            assert_eq!(MesiState::from_bits(state.to_bits()), state);
        }
        assert_eq!(MesiState::from_bits(0b111), MesiState::Modified);
    }

    #[test]
    fn dirty_and_valid_follow_the_lattice() {
        assert!(!MesiState::Invalid.is_valid());
        assert!(MesiState::Shared.is_valid() && !MesiState::Shared.is_dirty());
        assert!(MesiState::Exclusive.is_valid() && !MesiState::Exclusive.is_dirty());
        assert!(MesiState::Modified.is_dirty());
        assert_eq!(MesiState::Modified.label(), "M");
    }
}

//! NGMP-like memory hierarchy for the LAEC study.
//!
//! This crate models the memory system of the paper's evaluation platform
//! (§III.B, §IV): per-core private L1 data caches (4-way, 32 B lines, 16 KB),
//! a store (write) buffer, a shared bus, a shared write-back L2 and main
//! memory.  The model is both *functional* (caches hold real, ECC-protected
//! data and every access returns architecturally correct values) and *timed*
//! (every access reports the stall cycles a blocking in-order pipeline would
//! observe).
//!
//! Modules:
//!
//! * [`config`] — cache and hierarchy geometry/latency/protection parameters,
//! * [`cache`] — the set-associative, LRU, ECC-protected cache array,
//! * [`coherence`] — line states and the [`CoherenceProtocol`] decision
//!   tables (MESI, Dragon, MOESI),
//! * [`write_buffer`] — the NGMP store buffer with its
//!   "stall until completely empty" backpressure,
//! * [`bus`] — the shared bus with an interference model for unobserved cores,
//! * [`memory`] — flat main memory,
//! * [`hierarchy`] — [`MemorySystem`], the per-core façade the pipeline talks to,
//! * [`fault`] — periodic soft-error injection campaigns (single-bit and
//!   adjacent-bit MBU patterns),
//! * [`forensics`] — per-fault lifecycle records (strike → latent residency →
//!   first activation → classified outcome), `Option`-gated and
//!   simulation-cycle-stamped,
//! * [`replay`] — the trace-replay adapter ([`ReplayMemory`]) that re-drives
//!   the hierarchy from a recorded `laec_trace` stream,
//! * [`stats`] — hit/miss/traffic counters.
//!
//! # Example
//!
//! ```
//! use laec_mem::{HierarchyConfig, MemorySystem};
//!
//! let mut system = MemorySystem::new(HierarchyConfig::ngmp_write_back());
//! system.preload_word(0x1000, 42);
//! let miss = system.load_word(0x1000, 0);
//! assert_eq!(miss.value, 42);
//! assert!(!miss.dl1_hit);
//! let hit = system.load_word(0x1000, 50);
//! assert!(hit.dl1_hit);
//! assert_eq!(hit.extra_cycles, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod cache;
pub mod coherence;
pub mod config;
pub mod fault;
pub mod forensics;
pub mod hierarchy;
pub mod memory;
pub mod port;
pub mod replay;
pub mod stats;
pub mod write_buffer;

pub use bus::{Bus, BusGrant, Interference};
pub use cache::{Cache, EvictedLine, ReadHit};
pub use coherence::{
    CoherenceProtocol, Dragon, LineState, LocalWriteAction, Mesi, MesiState, Moesi,
    ParseProtocolError, ProtocolKind, SnoopResult,
};
pub use config::{AllocatePolicy, CacheConfig, HierarchyConfig, WritePolicy};
pub use fault::{
    FaultCampaign, FaultCampaignConfig, FaultCampaignReport, FaultPattern, FaultTarget,
    ParseFaultTargetError,
};
pub use forensics::{ActivationKind, CellForensics, FaultOutcome, FaultRecord};
pub use hierarchy::{inject_random_cache_fault, LoadResponse, MemorySystem, StoreResponse};
pub use memory::MainMemory;
pub use port::MemoryPort;
pub use replay::ReplayMemory;
pub use stats::{CacheStats, MemStats};
pub use write_buffer::{PendingStore, WriteBuffer};

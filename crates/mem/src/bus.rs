//! The shared on-chip bus connecting the private L1 caches to the L2.
//!
//! The NGMP connects its four cores to the shared L2 through a single bus;
//! contention on that bus is exactly why write-through DL1 caches hurt
//! guaranteed performance (every store travels over it — paper §I and §II.A).
//! The model is an occupancy tracker with round-robin-equivalent behaviour
//! for a single requesting core plus an optional *interference generator*
//! standing in for the other cores' traffic, which is how the WT-vs-WB
//! motivation experiment exercises contention without simulating four full
//! cores.

/// Result of one bus request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusGrant {
    /// Cycle at which the transfer starts (≥ the request cycle).
    pub start: u64,
    /// Cycle at which the transfer completes and the bus frees up.
    pub completion: u64,
    /// Cycles spent waiting for the bus before the transfer started.
    pub wait_cycles: u64,
}

/// Deterministic interference model for the non-observed cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interference {
    /// Extra occupied cycles inserted ahead of every Nth request.
    pub extra_cycles: u32,
    /// Apply the interference every `period` requests (0 disables it).
    pub period: u32,
}

impl Interference {
    /// No interference: the observed core has the bus to itself (the paper's
    /// single-active-core evaluation setup).
    #[must_use]
    pub fn none() -> Self {
        Interference::default()
    }

    /// Worst-case style interference: every request waits an extra
    /// `extra_cycles` (as if every other core issued a conflicting request).
    #[must_use]
    pub fn every_request(extra_cycles: u32) -> Self {
        Interference {
            extra_cycles,
            period: 1,
        }
    }
}

/// The shared bus.
///
/// ```
/// use laec_mem::Bus;
/// let mut bus = Bus::new(2);
/// let first = bus.request(0, 4);
/// assert_eq!(first.start, 0);
/// assert_eq!(first.completion, 4);
/// // A request issued while the bus is busy waits.
/// let second = bus.request(1, 4);
/// assert_eq!(second.start, 4);
/// assert_eq!(second.wait_cycles, 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bus {
    latency_per_direction: u32,
    busy_until: u64,
    interference: Interference,
    transactions: u64,
    total_wait_cycles: u64,
    requests_seen: u64,
}

impl Bus {
    /// Creates a bus with the given per-direction transfer latency.
    #[must_use]
    pub fn new(latency_per_direction: u32) -> Self {
        Bus {
            latency_per_direction,
            busy_until: 0,
            interference: Interference::none(),
            transactions: 0,
            total_wait_cycles: 0,
            requests_seen: 0,
        }
    }

    /// Installs an interference model for the unobserved cores.
    pub fn set_interference(&mut self, interference: Interference) {
        self.interference = interference;
    }

    /// Latency of one transfer direction in cycles.
    #[must_use]
    pub fn latency_per_direction(&self) -> u32 {
        self.latency_per_direction
    }

    /// Requests the bus at cycle `now` for a transfer of `cycles` bus cycles,
    /// returning when the transfer starts and completes.
    pub fn request(&mut self, now: u64, cycles: u32) -> BusGrant {
        self.requests_seen += 1;
        let mut earliest = self.busy_until.max(now);
        if self.interference.period > 0
            && self
                .requests_seen
                .is_multiple_of(u64::from(self.interference.period))
        {
            earliest += u64::from(self.interference.extra_cycles);
        }
        let start = earliest;
        let completion = start + u64::from(cycles);
        self.busy_until = completion;
        self.transactions += 1;
        let wait_cycles = start - now;
        self.total_wait_cycles += wait_cycles;
        BusGrant {
            start,
            completion,
            wait_cycles,
        }
    }

    /// A round-trip request (request + response direction) of the default
    /// width.
    pub fn round_trip(&mut self, now: u64) -> BusGrant {
        self.request(now, 2 * self.latency_per_direction)
    }

    /// A one-way transfer (e.g. a posted write).
    pub fn one_way(&mut self, now: u64) -> BusGrant {
        self.request(now, self.latency_per_direction)
    }

    /// Total transactions granted.
    #[must_use]
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Total cycles requests spent waiting for the bus.
    #[must_use]
    pub fn total_wait_cycles(&self) -> u64 {
        self.total_wait_cycles
    }

    /// Cycle until which the bus is currently occupied.
    #[must_use]
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_requests_serialise() {
        let mut bus = Bus::new(2);
        let a = bus.round_trip(0);
        assert_eq!((a.start, a.completion, a.wait_cycles), (0, 4, 0));
        let b = bus.round_trip(1);
        assert_eq!((b.start, b.completion, b.wait_cycles), (4, 8, 3));
        let c = bus.round_trip(20);
        assert_eq!((c.start, c.completion, c.wait_cycles), (20, 24, 0));
        assert_eq!(bus.transactions(), 3);
        assert_eq!(bus.total_wait_cycles(), 3);
        assert_eq!(bus.busy_until(), 24);
    }

    #[test]
    fn one_way_is_half_a_round_trip() {
        let mut bus = Bus::new(3);
        assert_eq!(bus.one_way(0).completion, 3);
        assert_eq!(bus.round_trip(10).completion, 16);
        assert_eq!(bus.latency_per_direction(), 3);
    }

    #[test]
    fn interference_delays_requests_periodically() {
        let mut quiet = Bus::new(2);
        let mut noisy = Bus::new(2);
        noisy.set_interference(Interference::every_request(6));
        let q = quiet.round_trip(0);
        let n = noisy.round_trip(0);
        assert_eq!(q.completion, 4);
        assert_eq!(n.completion, 10);
        assert_eq!(n.wait_cycles, 6);

        let mut sometimes = Bus::new(2);
        sometimes.set_interference(Interference {
            extra_cycles: 6,
            period: 2,
        });
        let first = sometimes.round_trip(0);
        assert_eq!(first.wait_cycles, 0, "first request not hit (period 2)");
        let second = sometimes.round_trip(first.completion);
        assert_eq!(second.wait_cycles, 6, "second request hit");
    }

    #[test]
    fn no_interference_by_default() {
        assert_eq!(Interference::none(), Interference::default());
        assert_eq!(Interference::every_request(4).period, 1);
    }
}

//! Configuration of the memory hierarchy.
//!
//! Defaults model the NGMP (quad-core LEON4) system the paper evaluates:
//! 16 KB, 4-way, 32 B/line private data caches, a shared bus, a shared
//! write-back L2 and off-chip memory (paper §III.B and §IV).

use laec_ecc::CodeKind;

/// Write hit policy of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Write-through: every store is propagated to the next level.
    WriteThrough,
    /// Write-back: stores update the cache only; dirty lines are written back
    /// on eviction.
    WriteBack,
}

/// Write miss policy of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocatePolicy {
    /// Fetch the line on a write miss, then write it (typical with WB).
    WriteAllocate,
    /// Forward the write to the next level without allocating (typical with WT).
    NoWriteAllocate,
}

/// Geometry, policies and protection of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (number of ways).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Write hit policy.
    pub write_policy: WritePolicy,
    /// Write miss policy.
    pub allocate_policy: AllocatePolicy,
    /// Protection code of the data array.
    pub protection: CodeKind,
}

impl CacheConfig {
    /// The paper's write-back DL1: 16 KB, 4-way, 32 B lines, SECDED.
    #[must_use]
    pub fn dl1_write_back() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 32,
            write_policy: WritePolicy::WriteBack,
            allocate_policy: AllocatePolicy::WriteAllocate,
            protection: CodeKind::Hsiao39_32,
        }
    }

    /// The production LEON4/NGMP DL1: write-through with a parity bit.
    #[must_use]
    pub fn dl1_write_through() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 32,
            write_policy: WritePolicy::WriteThrough,
            allocate_policy: AllocatePolicy::NoWriteAllocate,
            protection: CodeKind::EvenParity32,
        }
    }

    /// The instruction L1: 16 KB, 4-way, 32 B lines, parity (read-only data).
    #[must_use]
    pub fn il1() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 32,
            write_policy: WritePolicy::WriteThrough,
            allocate_policy: AllocatePolicy::NoWriteAllocate,
            protection: CodeKind::EvenParity32,
        }
    }

    /// The shared L2: 256 KB, 8-way, 32 B lines, write-back, SECDED.
    #[must_use]
    pub fn l2() -> Self {
        CacheConfig {
            size_bytes: 256 * 1024,
            ways: 8,
            line_bytes: 32,
            write_policy: WritePolicy::WriteBack,
            allocate_policy: AllocatePolicy::WriteAllocate,
            protection: CodeKind::Hsiao39_32,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::validate`]).
    #[must_use]
    pub fn sets(&self) -> u32 {
        // laec-lint: allow(panic-in-library) -- documented panic: a geometry
        // whose size/ways/line_bytes are inconsistent has no set count; the
        // division below would silently produce one.
        self.validate().expect("invalid cache geometry");
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// Number of 32-bit words per line.
    #[must_use]
    pub fn words_per_line(&self) -> u32 {
        self.line_bytes / 4
    }

    /// Checks that sizes are powers of two and divide evenly.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.line_bytes < 4 || !self.line_bytes.is_power_of_two() {
            return Err(format!(
                "line size {} must be a power of two ≥ 4",
                self.line_bytes
            ));
        }
        if self.line_bytes > 256 {
            // The per-line pristine-word bitmask in `cache::Line` covers at
            // most 64 words; real embedded caches stay well under this.
            return Err(format!(
                "line size {} exceeds the supported maximum of 256 bytes",
                self.line_bytes
            ));
        }
        if self.ways == 0 {
            return Err("associativity must be at least 1".to_string());
        }
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(self.ways * self.line_bytes) {
            return Err(format!(
                "capacity {} is not divisible by ways*line ({})",
                self.size_bytes,
                self.ways * self.line_bytes
            ));
        }
        let sets = self.size_bytes / (self.ways * self.line_bytes);
        if !sets.is_power_of_two() {
            return Err(format!("set count {sets} must be a power of two"));
        }
        Ok(())
    }
}

/// Latency and structural parameters of the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// DL1 configuration.
    pub dl1: CacheConfig,
    /// L2 configuration.
    pub l2: CacheConfig,
    /// Cycles for one bus transfer direction (request or response).
    pub bus_latency: u32,
    /// L2 hit access latency in cycles.
    pub l2_latency: u32,
    /// Main-memory access latency in cycles.
    pub memory_latency: u32,
    /// Number of entries in the per-core store (write) buffer.
    pub write_buffer_entries: u32,
    /// Number of cores sharing the bus/L2 (the paper's NGMP has 4).
    pub cores: u32,
}

impl HierarchyConfig {
    /// The paper's evaluated configuration: WB DL1 with SECDED.
    #[must_use]
    pub fn ngmp_write_back() -> Self {
        HierarchyConfig {
            dl1: CacheConfig::dl1_write_back(),
            l2: CacheConfig::l2(),
            bus_latency: 2,
            l2_latency: 6,
            memory_latency: 20,
            write_buffer_entries: 8,
            cores: 4,
        }
    }

    /// The production NGMP configuration: WT DL1 with parity, SECDED L2.
    #[must_use]
    pub fn ngmp_write_through() -> Self {
        HierarchyConfig {
            dl1: CacheConfig::dl1_write_through(),
            ..Self::ngmp_write_back()
        }
    }

    /// Total DL1 miss penalty for an L2 hit (request + L2 + response), the
    /// number of extra cycles a blocking load waits.
    #[must_use]
    pub fn l2_hit_penalty(&self) -> u32 {
        2 * self.bus_latency + self.l2_latency
    }

    /// Total DL1 miss penalty when the access also misses in L2.
    #[must_use]
    pub fn memory_penalty(&self) -> u32 {
        self.l2_hit_penalty() + self.memory_latency
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::ngmp_write_back()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dl1_geometry() {
        let dl1 = CacheConfig::dl1_write_back();
        assert_eq!(dl1.sets(), 128);
        assert_eq!(dl1.words_per_line(), 8);
        assert_eq!(dl1.write_policy, WritePolicy::WriteBack);
        assert_eq!(dl1.protection, CodeKind::Hsiao39_32);
        assert!(dl1.validate().is_ok());
    }

    #[test]
    fn production_dl1_uses_parity_write_through() {
        let dl1 = CacheConfig::dl1_write_through();
        assert_eq!(dl1.write_policy, WritePolicy::WriteThrough);
        assert_eq!(dl1.allocate_policy, AllocatePolicy::NoWriteAllocate);
        assert_eq!(dl1.protection, CodeKind::EvenParity32);
    }

    #[test]
    fn l2_is_bigger_and_secded() {
        let l2 = CacheConfig::l2();
        assert_eq!(l2.sets(), 1024);
        assert_eq!(l2.protection, CodeKind::Hsiao39_32);
        assert!(l2.size_bytes > CacheConfig::dl1_write_back().size_bytes);
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let mut config = CacheConfig::dl1_write_back();
        config.line_bytes = 24;
        assert!(config.validate().is_err());
        config.line_bytes = 32;
        config.ways = 0;
        assert!(config.validate().is_err());
        config.ways = 3;
        config.size_bytes = 16 * 1024;
        assert!(
            config.validate().is_err(),
            "set count must be a power of two"
        );
        config.ways = 4;
        config.size_bytes = 1000;
        assert!(config.validate().is_err());
        // Lines wider than 64 words would overflow the per-line pristine
        // bitmask; validation must reject them up front.
        let mut config = CacheConfig::dl1_write_back();
        config.line_bytes = 512;
        config.size_bytes = 64 * 1024;
        assert!(config.validate().is_err(), "512 B lines are out of range");
        config.line_bytes = 256;
        assert!(config.validate().is_ok(), "256 B (64 words) is the maximum");
    }

    #[test]
    #[should_panic(expected = "invalid cache geometry")]
    fn sets_panics_on_invalid_geometry() {
        let mut config = CacheConfig::dl1_write_back();
        config.line_bytes = 3;
        let _ = config.sets();
    }

    #[test]
    fn hierarchy_penalties() {
        let config = HierarchyConfig::ngmp_write_back();
        assert_eq!(config.l2_hit_penalty(), 10);
        assert_eq!(config.memory_penalty(), 30);
        assert_eq!(config.cores, 4);
        assert_eq!(HierarchyConfig::default(), config);
        let wt = HierarchyConfig::ngmp_write_through();
        assert_eq!(wt.dl1.write_policy, WritePolicy::WriteThrough);
        assert_eq!(wt.l2, config.l2);
    }
}

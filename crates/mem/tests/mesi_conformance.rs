//! MESI protocol conformance: the exhaustive state-transition table.
//!
//! For every start state {M, E, S, I} of a line in core 0's DL1, exercise
//! every input — local read, local write, remote read, remote write,
//! eviction — on a two-core system and assert the next state (and the side
//! effects the protocol mandates: upgrades, invalidations, interventions,
//! writebacks) against the protocol specification:
//!
//! | from | local rd | local wr      | remote rd       | remote wr | evict        |
//! |------|----------|---------------|-----------------|-----------|--------------|
//! | I    | E (or S) | M (RdX)       | —               | —         | —            |
//! | S    | S        | M (BusUpgr)   | S               | I         | I (silent)   |
//! | E    | E        | M (silent)    | S               | I         | I (silent)   |
//! | M    | M        | M             | S (supplies)    | I (sup.)  | I (writeback)|
//!
//! Plus the deliberate false-sharing kernel: invalidation counts must grow
//! with the core count even though every final counter value is exact.

use laec_mem::{HierarchyConfig, MesiState};
use laec_pipeline::PipelineConfig;
use laec_smp::{CoherentMemory, SmpSystem, StopPolicy};
use laec_workloads::smp::{false_sharing, SHARED_BASE};

const A: u32 = 0x1_0000;

fn two_cores() -> CoherentMemory {
    CoherentMemory::new(HierarchyConfig::ngmp_write_back(), 2)
}

/// Drives core 0's copy of `A` into the requested start state.
fn reach(memory: &CoherentMemory, state: MesiState) {
    memory.preload_word(A, 0xC0DE);
    match state {
        MesiState::Invalid => {}
        MesiState::Exclusive => {
            memory.load(0, A, 0);
        }
        MesiState::Shared => {
            memory.load(0, A, 0);
            memory.load(1, A, 10);
        }
        MesiState::Modified => {
            memory.store(0, A, 0xBEEF, 0);
        }
        other => unreachable!("{other:?} is not a MESI state"),
    }
    assert_eq!(memory.state(0, A), state, "setup failed for {state:?}");
}

#[test]
fn from_invalid_local_read_fills_exclusive_without_sharers() {
    let memory = two_cores();
    reach(&memory, MesiState::Invalid);
    let response = memory.load(0, A, 0);
    assert!(!response.dl1_hit);
    assert_eq!(response.value, 0xC0DE);
    assert_eq!(memory.state(0, A), MesiState::Exclusive);
}

#[test]
fn from_invalid_local_read_fills_shared_when_a_remote_copy_exists() {
    let memory = two_cores();
    memory.preload_word(A, 0xC0DE);
    memory.load(1, A, 0); // remote copy: E in core 1
    let response = memory.load(0, A, 10);
    assert_eq!(response.value, 0xC0DE);
    assert_eq!(memory.state(0, A), MesiState::Shared);
    assert_eq!(memory.state(1, A), MesiState::Shared, "remote E downgraded");
}

#[test]
fn from_invalid_local_read_of_a_remote_modified_line_takes_the_intervention() {
    let memory = two_cores();
    memory.store(1, A, 0xFACE, 0); // M in core 1, memory stale
    assert_eq!(memory.state(1, A), MesiState::Modified);
    let response = memory.load(0, A, 10);
    assert_eq!(response.value, 0xFACE, "the dirty owner supplied the line");
    assert_eq!(memory.state(0, A), MesiState::Shared);
    assert_eq!(memory.state(1, A), MesiState::Shared);
    assert_eq!(memory.coherence_stats().interventions, 1);
}

#[test]
fn from_invalid_local_write_allocates_modified_and_invalidates_remotes() {
    let memory = two_cores();
    memory.preload_word(A, 0xC0DE);
    memory.load(1, A, 0); // remote copy
    memory.store(0, A, 7, 10);
    assert_eq!(memory.state(0, A), MesiState::Modified);
    assert_eq!(memory.state(1, A), MesiState::Invalid, "RdX invalidates");
    assert_eq!(memory.coherence_stats().invalidations, 1);
}

#[test]
fn from_shared_local_read_stays_shared() {
    let memory = two_cores();
    reach(&memory, MesiState::Shared);
    assert!(memory.load(0, A, 20).dl1_hit);
    assert_eq!(memory.state(0, A), MesiState::Shared);
}

#[test]
fn from_shared_local_write_upgrades_to_modified() {
    let memory = two_cores();
    reach(&memory, MesiState::Shared);
    let before = memory.coherence_stats();
    let response = memory.store(0, A, 9, 20);
    assert!(response.dl1_hit);
    assert!(
        response.extra_cycles > 0,
        "a BusUpgr broadcast is not free ({} cycles)",
        response.extra_cycles
    );
    assert_eq!(memory.state(0, A), MesiState::Modified);
    assert_eq!(memory.state(1, A), MesiState::Invalid);
    let after = memory.coherence_stats();
    assert_eq!(after.upgrades, before.upgrades + 1);
    assert_eq!(after.invalidations, before.invalidations + 1);
}

#[test]
fn from_shared_remote_read_stays_shared() {
    let memory = two_cores();
    reach(&memory, MesiState::Shared);
    memory.load(1, A, 20);
    assert_eq!(memory.state(0, A), MesiState::Shared);
    assert_eq!(memory.state(1, A), MesiState::Shared);
}

#[test]
fn from_shared_remote_write_invalidates() {
    let memory = two_cores();
    reach(&memory, MesiState::Shared);
    memory.store(1, A, 5, 20);
    assert_eq!(memory.state(0, A), MesiState::Invalid);
    assert_eq!(memory.state(1, A), MesiState::Modified);
}

#[test]
fn from_shared_eviction_is_silent() {
    let memory = two_cores();
    reach(&memory, MesiState::Shared);
    memory.evict(0, A, 100);
    assert_eq!(memory.state(0, A), MesiState::Invalid);
    // The other copy is untouched and the data intact.
    assert_eq!(memory.state(1, A), MesiState::Shared);
    assert_eq!(memory.load(1, A, 200).value, 0xC0DE);
}

#[test]
fn from_exclusive_local_read_stays_exclusive() {
    let memory = two_cores();
    reach(&memory, MesiState::Exclusive);
    assert!(memory.load(0, A, 20).dl1_hit);
    assert_eq!(memory.state(0, A), MesiState::Exclusive);
}

#[test]
fn from_exclusive_local_write_goes_modified_silently() {
    let memory = two_cores();
    reach(&memory, MesiState::Exclusive);
    let bus_before = memory.core_stats(0).bus_transactions;
    let response = memory.store(0, A, 3, 20);
    assert!(response.dl1_hit);
    assert_eq!(response.extra_cycles, 0, "E→M needs no bus transaction");
    assert_eq!(memory.core_stats(0).bus_transactions, bus_before);
    assert_eq!(memory.state(0, A), MesiState::Modified);
}

#[test]
fn from_exclusive_remote_read_downgrades_to_shared() {
    let memory = two_cores();
    reach(&memory, MesiState::Exclusive);
    memory.load(1, A, 20);
    assert_eq!(memory.state(0, A), MesiState::Shared);
    assert_eq!(memory.state(1, A), MesiState::Shared);
}

#[test]
fn from_exclusive_remote_write_invalidates() {
    let memory = two_cores();
    reach(&memory, MesiState::Exclusive);
    memory.store(1, A, 5, 20);
    assert_eq!(memory.state(0, A), MesiState::Invalid);
    assert_eq!(memory.state(1, A), MesiState::Modified);
}

#[test]
fn from_exclusive_eviction_is_silent() {
    let memory = two_cores();
    reach(&memory, MesiState::Exclusive);
    memory.evict(0, A, 100);
    assert_eq!(memory.state(0, A), MesiState::Invalid);
    assert_eq!(memory.load(1, A, 200).value, 0xC0DE, "clean data survives");
}

#[test]
fn from_modified_local_accesses_stay_modified() {
    let memory = two_cores();
    reach(&memory, MesiState::Modified);
    assert!(memory.load(0, A, 20).dl1_hit);
    assert_eq!(memory.state(0, A), MesiState::Modified);
    memory.store(0, A, 0xAAAA, 30);
    assert_eq!(memory.state(0, A), MesiState::Modified);
}

#[test]
fn from_modified_remote_read_supplies_and_shares() {
    let memory = two_cores();
    reach(&memory, MesiState::Modified);
    let response = memory.load(1, A, 20);
    assert_eq!(response.value, 0xBEEF, "intervention forwards dirty data");
    assert_eq!(memory.state(0, A), MesiState::Shared);
    assert_eq!(memory.state(1, A), MesiState::Shared);
    assert_eq!(memory.coherence_stats().interventions, 1);
}

#[test]
fn from_modified_remote_write_supplies_and_invalidates() {
    let memory = two_cores();
    reach(&memory, MesiState::Modified);
    memory.store(1, A, 0x5555, 20);
    assert_eq!(memory.state(0, A), MesiState::Invalid);
    assert_eq!(memory.state(1, A), MesiState::Modified);
    assert_eq!(memory.coherence_stats().interventions, 1);
    assert_eq!(memory.coherence_stats().invalidations, 1);
    // The newest value is the remote writer's.
    assert_eq!(memory.peek_coherent(A), 0x5555);
}

#[test]
fn from_modified_eviction_writes_back() {
    let memory = two_cores();
    reach(&memory, MesiState::Modified);
    memory.evict(0, A, 100);
    assert_eq!(memory.state(0, A), MesiState::Invalid);
    // The dirty value survived below (L2) and a fresh load sees it.
    assert_eq!(memory.load(1, A, 200).value, 0xBEEF);
}

#[test]
fn false_sharing_invalidations_grow_with_core_count() {
    let invalidations = |cores: u32| {
        let workload = false_sharing(cores, 64);
        let configs = vec![PipelineConfig::laec(); workload.programs.len()];
        let mut system = SmpSystem::new(workload.programs, configs);
        let result = system.run(StopPolicy::AllHalt);
        // Correctness first: the counters are exact despite the ping-pong.
        for core in 0..cores {
            assert_eq!(
                system.memory().peek_coherent(SHARED_BASE + 4 * core),
                64,
                "core {core} counter at {cores} cores"
            );
        }
        result.coherence.invalidations
    };
    let one = invalidations(1);
    let two = invalidations(2);
    let four = invalidations(4);
    assert_eq!(one, 0, "a single core has nobody to invalidate");
    assert!(two > 0, "two cores on one line must fight over it");
    assert!(
        four > 2 * two,
        "more cores, more ping-pong: {four} vs {two}"
    );
}

//! Exact equivalence of bulk and serial fault-injection opportunity
//! accounting.
//!
//! `FaultCampaign::maybe_inject_many(n)` must inject at *exactly* the same
//! opportunities — same count, same RNG stream, same struck words, same
//! internal countdown afterwards — as `n` repeated `maybe_inject` calls.
//! Trace-backed replay burns through run-length-encoded commit runs with
//! the bulk path while full simulation takes the serial path; any
//! off-by-one between them would silently break the byte-identical
//! guarantee of trace-backed campaigns and of the sampled campaign engine
//! built on top of them.
//!
//! The boundary cases called out here: `interval == 1` (every opportunity
//! injects) and chunks that end exactly at an injection boundary
//! (`remaining == until_next` entering the bulk call).

use laec_mem::{FaultCampaign, FaultCampaignConfig, HierarchyConfig, MemorySystem};

/// A memory system with a populated DL1 so every strike finds a target.
fn populated_system() -> MemorySystem {
    let mut system = MemorySystem::new(HierarchyConfig::ngmp_write_back());
    for i in 0..32u32 {
        system.preload_word(0x6000 + 4 * i, i.wrapping_mul(0x0101_0101));
    }
    for i in 0..32u32 {
        system.load_word(0x6000 + 4 * i, u64::from(i));
    }
    system
}

/// Drives one serial and one bulk campaign over the same opportunity
/// stream (`chunks` for the bulk side, their sum serially) and asserts the
/// two systems and campaigns are indistinguishable — including *after* the
/// stream, by continuing both serially for `tail` further opportunities.
fn assert_bulk_matches_serial(interval: u64, chunks: &[u64], tail: u64) {
    let mut serial_system = populated_system();
    let mut bulk_system = populated_system();
    let config = FaultCampaignConfig::single_bit(0xD15EA5E, interval);
    let mut serial = FaultCampaign::new(config);
    let mut bulk = FaultCampaign::new(config);

    let total: u64 = chunks.iter().sum();
    let mut serial_injected = 0;
    for _ in 0..total {
        if serial.maybe_inject(&mut serial_system).is_some() {
            serial_injected += 1;
        }
    }
    let mut bulk_injected = 0;
    for &chunk in chunks {
        bulk_injected += bulk.maybe_inject_many(chunk, &mut bulk_system);
    }

    assert_eq!(
        serial_injected, bulk_injected,
        "interval {interval}, chunks {chunks:?}: injection counts diverged"
    );
    assert_eq!(
        serial.report(),
        bulk.report(),
        "interval {interval}, chunks {chunks:?}: campaign reports diverged"
    );

    // The countdown state after the stream must agree too: continue both
    // campaigns serially and require identical injection patterns.
    for opportunity in 0..tail {
        assert_eq!(
            serial.maybe_inject(&mut serial_system).is_some(),
            bulk.maybe_inject(&mut bulk_system).is_some(),
            "interval {interval}, chunks {chunks:?}: countdown diverged at \
             tail opportunity {opportunity}"
        );
    }

    // Same struck words in the same order ⇒ identical ECC outcomes when
    // everything is read back, and identical ECC statistics.
    for i in 0..32u32 {
        let address = 0x6000 + 4 * i;
        let now = 10_000 + u64::from(i);
        assert_eq!(
            serial_system.load_word(address, now).outcome,
            bulk_system.load_word(address, now).outcome,
            "interval {interval}, chunks {chunks:?}: word {address:#x} differs"
        );
    }
    assert_eq!(serial_system.stats().dl1.ecc, bulk_system.stats().dl1.ecc);
    assert_eq!(
        serial_system.unrecoverable_errors(),
        bulk_system.unrecoverable_errors()
    );
}

#[test]
fn interval_one_injects_on_every_opportunity_in_both_paths() {
    // interval == 1: every opportunity is an injection boundary.
    assert_bulk_matches_serial(1, &[1, 1, 1, 5, 0, 3], 7);
    let mut system = populated_system();
    let mut campaign = FaultCampaign::new(FaultCampaignConfig::single_bit(9, 1));
    assert_eq!(campaign.maybe_inject_many(13, &mut system), 13);
    assert_eq!(campaign.report().injected, 13);
}

#[test]
fn chunks_ending_exactly_on_an_injection_boundary() {
    // Entering maybe_inject_many with remaining == until_next: the chunk's
    // last opportunity *is* the injection.  Fresh campaign: until_next ==
    // interval, so a first chunk of exactly `interval` hits the boundary;
    // subsequent multiples of the interval keep landing on it.
    for interval in [2u64, 3, 7, 10] {
        assert_bulk_matches_serial(interval, &[interval], 3 * interval);
        assert_bulk_matches_serial(interval, &[interval, interval, interval], 2 * interval);
        // Partial chunk first, then one sized exactly to the remaining
        // countdown (remaining == until_next mid-stream).
        assert_bulk_matches_serial(interval, &[interval - 1, 1, interval], 2 * interval);
    }
}

#[test]
fn odd_shaped_chunk_streams_match_serial_exactly() {
    for interval in [1u64, 2, 5, 7, 16] {
        assert_bulk_matches_serial(
            interval,
            &[3, 0, 11, 7, 1, 29, 2, 47, 0, 6],
            2 * interval + 3,
        );
        assert_bulk_matches_serial(interval, &[0, 0, 1, 0, 2, 100], interval + 1);
    }
}

#[test]
fn zero_opportunities_are_a_no_op_in_both_paths() {
    let mut system = populated_system();
    let mut campaign = FaultCampaign::new(FaultCampaignConfig::single_bit(5, 4));
    assert_eq!(campaign.maybe_inject_many(0, &mut system), 0);
    assert_eq!(campaign.report().injected, 0);
    assert_eq!(campaign.report().skipped_empty, 0);
    // The countdown must be untouched: three more opportunities reach the
    // interval-4 boundary exactly on the fourth.
    assert!(campaign.maybe_inject(&mut system).is_none());
    assert!(campaign.maybe_inject(&mut system).is_none());
    assert!(campaign.maybe_inject(&mut system).is_none());
    assert!(campaign.maybe_inject(&mut system).is_some());
}

#[test]
fn disabled_campaign_bulk_path_is_inert() {
    let mut system = populated_system();
    let mut campaign = FaultCampaign::new(FaultCampaignConfig {
        interval: 0,
        ..FaultCampaignConfig::default()
    });
    assert_eq!(campaign.maybe_inject_many(1_000, &mut system), 0);
    assert_eq!(campaign.report().injected, 0);
}

//! Cross-protocol property: with a single core there is nobody to snoop,
//! nobody to update and nobody to invalidate, so every coherence protocol
//! must degenerate to the same machine.  A run under MESI, Dragon and MOESI
//! on one core must be *identical in every observable* — cycles, registers,
//! memory image, coherence counters, even the chronogram.
//!
//! This is the guarantee that makes the protocol a safe campaign axis: it
//! can only change behaviour where coherence traffic actually exists.

use laec_mem::ProtocolKind;
use laec_pipeline::PipelineConfig;
use laec_smp::{SmpSystem, StopPolicy};
use laec_workloads::smp::{false_sharing, parallel_reduction, SmpWorkload};

/// Runs `workload` on a 1-core system under `protocol` and returns the full
/// debug rendering of the result — a byte-for-byte fingerprint of every
/// field the run reports.
fn fingerprint(workload: &SmpWorkload, protocol: ProtocolKind) -> String {
    let configs = vec![PipelineConfig::laec(); workload.programs.len()];
    let mut system = SmpSystem::with_protocol(workload.programs.clone(), configs, protocol);
    let result = system.run(StopPolicy::AllHalt);
    format!("{result:?}")
}

#[test]
fn single_core_runs_are_identical_under_every_protocol() {
    for (name, workload) in [
        ("parallel_reduction", parallel_reduction(1, 64)),
        ("false_sharing", false_sharing(1, 32)),
    ] {
        let mesi = fingerprint(&workload, ProtocolKind::Mesi);
        for protocol in ProtocolKind::ALL {
            assert_eq!(
                fingerprint(&workload, protocol),
                mesi,
                "{name}: one core under {protocol} must be MESI, bit for bit"
            );
        }
    }
}

#[test]
fn multi_core_runs_agree_architecturally_but_differ_in_traffic() {
    // The contrast that proves the axis is live: at 4 cores the protocols
    // compute the same answer over different bus traffic.
    let run = |protocol| {
        let workload = parallel_reduction(4, 128);
        let configs = vec![PipelineConfig::laec(); workload.programs.len()];
        let mut system = SmpSystem::with_protocol(workload.programs, configs, protocol);
        system.run(StopPolicy::AllHalt)
    };
    let mesi = run(ProtocolKind::Mesi);
    let dragon = run(ProtocolKind::Dragon);
    let moesi = run(ProtocolKind::Moesi);
    assert_eq!(mesi.final_checksum, dragon.final_checksum);
    assert_eq!(mesi.final_checksum, moesi.final_checksum);
    assert!(mesi.coherence.invalidations > 0);
    assert_eq!(
        dragon.coherence.invalidations, 0,
        "Dragon never invalidates"
    );
    assert!(dragon.coherence.bus_updates > 0);
    assert_eq!(mesi.coherence.bus_updates, 0);
    assert_eq!(moesi.coherence.bus_updates, 0);
}

//! Dragon protocol conformance: the exhaustive state-transition table of
//! the update-based protocol.
//!
//! Dragon never invalidates on a write: stores to shared (`Sc`/`Sm`) lines
//! broadcast the written bytes (`BusUpd`) into the surviving remote copies,
//! which therefore stay coherent *by content*.  A dirty copy snooped by a
//! remote read supplies the line cache-to-cache and keeps the writeback
//! obligation (`Sm`); a remote copy absorbing a `BusUpd` hands that
//! obligation to the writer.
//!
//! | from | local rd | local wr          | remote rd    | remote wr (upd) | evict        |
//! |------|----------|-------------------|--------------|-----------------|--------------|
//! | I    | E (or Sc)| M (or Sm, BusUpd) | —            | —               | —            |
//! | Sc   | Sc       | Sm (BusUpd)       | Sc           | Sc (absorbs)    | I (silent)   |
//! | E    | E        | M (silent)        | Sc           | —               | I (silent)   |
//! | Sm   | Sm       | Sm (BusUpd)       | Sm (supplies)| Sc (absorbs)    | I (writeback)|
//! | M    | M        | M                 | Sm (supplies)| —               | I (writeback)|
//!
//! Plus the deliberate false-sharing kernel: under Dragon the line never
//! ping-pongs — zero invalidations, only update traffic.

use laec_mem::{HierarchyConfig, LineState, ProtocolKind};
use laec_pipeline::PipelineConfig;
use laec_smp::{CoherentMemory, SmpSystem, StopPolicy};
use laec_workloads::smp::{false_sharing, SHARED_BASE};

const A: u32 = 0x1_0000;

fn two_cores() -> CoherentMemory {
    CoherentMemory::with_protocol(HierarchyConfig::ngmp_write_back(), 2, ProtocolKind::Dragon)
}

/// Drives core 0's copy of `A` into the requested start state.
fn reach(memory: &CoherentMemory, state: LineState) {
    memory.preload_word(A, 0xC0DE);
    match state {
        LineState::Invalid => {}
        LineState::Exclusive => {
            memory.load(0, A, 0);
        }
        LineState::SharedClean => {
            memory.load(1, A, 0);
            memory.load(0, A, 10);
        }
        LineState::Modified => {
            memory.store(0, A, 0xBEEF, 0);
        }
        LineState::SharedModified => {
            memory.load(1, A, 0);
            memory.load(0, A, 10);
            memory.store(0, A, 0xBEEF, 20);
        }
        other => unreachable!("{other:?} is not a Dragon state"),
    }
    assert_eq!(memory.state(0, A), state, "setup failed for {state:?}");
}

#[test]
fn from_invalid_local_read_fills_exclusive_without_sharers() {
    let memory = two_cores();
    reach(&memory, LineState::Invalid);
    let response = memory.load(0, A, 0);
    assert!(!response.dl1_hit);
    assert_eq!(response.value, 0xC0DE);
    assert_eq!(memory.state(0, A), LineState::Exclusive);
}

#[test]
fn from_invalid_local_read_joins_existing_copies_as_shared_clean() {
    let memory = two_cores();
    memory.preload_word(A, 0xC0DE);
    memory.load(1, A, 0); // remote copy: E in core 1
    let response = memory.load(0, A, 10);
    assert_eq!(response.value, 0xC0DE);
    assert_eq!(memory.state(0, A), LineState::SharedClean);
    assert_eq!(memory.state(1, A), LineState::SharedClean);
    assert_eq!(memory.coherence_stats().invalidations, 0);
}

#[test]
fn from_invalid_local_read_of_a_dirty_line_is_supplied_cache_to_cache() {
    let memory = two_cores();
    memory.preload_word(A, 0xC0DE);
    memory.store(1, A, 0xFACE, 0); // M in core 1, memory stale
    assert_eq!(memory.state(1, A), LineState::Modified);
    let response = memory.load(0, A, 10);
    assert_eq!(response.value, 0xFACE, "the dirty owner supplied the line");
    assert_eq!(memory.state(0, A), LineState::SharedClean);
    assert_eq!(
        memory.state(1, A),
        LineState::SharedModified,
        "the supplier keeps the writeback obligation"
    );
    assert_eq!(memory.coherence_stats().interventions, 1);
    assert_eq!(
        memory.peek_memory(A),
        0xC0DE,
        "no writeback happened: memory stays stale until the owner evicts"
    );
}

#[test]
fn writes_to_shared_lines_update_remote_copies_instead_of_invalidating() {
    let memory = two_cores();
    reach(&memory, LineState::SharedClean);
    let response = memory.store(0, A, 9, 20);
    assert!(response.dl1_hit);
    assert!(response.extra_cycles > 0, "a BusUpd broadcast is not free");
    assert_eq!(memory.state(0, A), LineState::SharedModified);
    assert_eq!(memory.state(1, A), LineState::SharedClean, "copy survives");
    let remote = memory.load(1, A, 30);
    assert!(remote.dl1_hit, "the remote copy was never invalidated");
    assert_eq!(remote.value, 9, "the update merged the written bytes");
    let stats = memory.coherence_stats();
    assert_eq!(stats.bus_updates, 1);
    assert_eq!(stats.invalidations, 0);
    assert_eq!(stats.upgrades, 0);
}

#[test]
fn from_shared_modified_further_writes_keep_broadcasting() {
    let memory = two_cores();
    reach(&memory, LineState::SharedModified);
    let before = memory.coherence_stats().bus_updates;
    memory.store(0, A, 0xAAAA, 30);
    assert_eq!(memory.state(0, A), LineState::SharedModified);
    assert_eq!(memory.coherence_stats().bus_updates, before + 1);
    assert_eq!(memory.load(1, A, 40).value, 0xAAAA);
}

#[test]
fn an_absorbed_update_transfers_the_writeback_obligation() {
    let memory = two_cores();
    reach(&memory, LineState::SharedModified); // core 0 Sm, core 1 Sc
    memory.store(1, A, 0x5555, 30);
    assert_eq!(
        memory.state(0, A),
        LineState::SharedClean,
        "the old owner downgrades: the writer now owes the writeback"
    );
    assert_eq!(memory.state(1, A), LineState::SharedModified);
    assert_eq!(memory.peek_coherent(A), 0x5555);
    assert_eq!(memory.coherence_stats().invalidations, 0);
}

#[test]
fn from_exclusive_local_write_goes_modified_silently() {
    let memory = two_cores();
    reach(&memory, LineState::Exclusive);
    let bus_before = memory.core_stats(0).bus_transactions;
    let response = memory.store(0, A, 3, 20);
    assert!(response.dl1_hit);
    assert_eq!(response.extra_cycles, 0, "E→M needs no bus transaction");
    assert_eq!(memory.core_stats(0).bus_transactions, bus_before);
    assert_eq!(memory.state(0, A), LineState::Modified);
}

#[test]
fn a_write_miss_with_sharers_fetches_then_broadcasts() {
    let memory = two_cores();
    memory.preload_word(A, 0xC0DE);
    memory.load(1, A, 0); // remote copy
    let response = memory.store(0, A, 7, 10);
    assert!(!response.dl1_hit);
    assert_eq!(memory.state(0, A), LineState::SharedModified);
    assert_eq!(memory.state(1, A), LineState::SharedClean, "still resident");
    assert_eq!(memory.load(1, A, 20).value, 7);
    let stats = memory.coherence_stats();
    assert_eq!(stats.bus_updates, 1);
    assert_eq!(stats.invalidations, 0, "Dragon write misses do not RdX");
}

#[test]
fn dirty_shared_eviction_writes_back() {
    let memory = two_cores();
    reach(&memory, LineState::SharedModified);
    memory.evict(1, A, 50); // drop the clean remote copy (silent)
    memory.evict(0, A, 100); // the Sm owner must write back
    assert_eq!(memory.state(0, A), LineState::Invalid);
    assert_eq!(memory.load(1, A, 200).value, 0xBEEF, "dirty data survived");
}

#[test]
fn false_sharing_produces_update_traffic_and_zero_invalidations() {
    let run = |cores: u32| {
        let workload = false_sharing(cores, 64);
        let configs = vec![PipelineConfig::laec(); workload.programs.len()];
        let mut system = SmpSystem::with_protocol(workload.programs, configs, ProtocolKind::Dragon);
        let result = system.run(StopPolicy::AllHalt);
        // Correctness first: every counter is exact despite the contention.
        for core in 0..cores {
            assert_eq!(
                system.memory().peek_coherent(SHARED_BASE + 4 * core),
                64,
                "core {core} counter at {cores} cores"
            );
        }
        result.coherence
    };
    let two = run(2);
    let four = run(4);
    for (cores, stats) in [(2, two), (4, four)] {
        assert_eq!(
            stats.invalidations, 0,
            "{cores} cores: an update protocol never invalidates"
        );
        assert_eq!(stats.upgrades, 0, "{cores} cores: and never upgrades");
        assert!(stats.bus_updates > 0, "{cores} cores: writes broadcast");
    }
    assert!(
        four.bus_updates > two.bus_updates,
        "more cores, more copies to keep fresh: {} vs {}",
        four.bus_updates,
        two.bus_updates
    );
}

#[test]
fn dragon_runs_are_deterministic() {
    let run = || {
        let workload = laec_workloads::smp::parallel_reduction(4, 128);
        let configs = vec![PipelineConfig::laec(); workload.programs.len()];
        let mut system = SmpSystem::with_protocol(workload.programs, configs, ProtocolKind::Dragon);
        let result = system.run(StopPolicy::AllHalt);
        (
            result.final_checksum,
            result.coherence,
            result
                .cores
                .iter()
                .map(|c| c.stats.cycles)
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run(), "identical systems run identically");
}

//! MOESI protocol conformance: the exhaustive state-transition table of
//! the Owned extension.
//!
//! MOESI adds one state to MESI: a dirty line snooped by a remote read
//! moves to `Owned` instead of writing back — the owner keeps supplying
//! the data cache-to-cache and keeps the writeback obligation, so L2 and
//! memory stay stale until the owner evicts.  Writes still invalidate,
//! exactly like MESI.
//!
//! | from | local rd | local wr        | remote rd    | remote wr | evict        |
//! |------|----------|-----------------|--------------|-----------|--------------|
//! | I    | E (or S) | M (RdX)         | —            | —         | —            |
//! | S    | S        | M (BusUpgr)     | S            | I         | I (silent)   |
//! | E    | E        | M (silent)      | S            | I         | I (silent)   |
//! | O    | O        | M (BusUpgr)     | O (supplies) | I (sup.)  | I (writeback)|
//! | M    | M        | M               | O (supplies) | I (sup.)  | I (writeback)|
//!
//! Plus the deliberate false-sharing kernel: MOESI is still an invalidation
//! protocol, so the line ping-pongs just as it does under MESI.

use laec_mem::{HierarchyConfig, LineState, ProtocolKind};
use laec_pipeline::PipelineConfig;
use laec_smp::{CoherentMemory, SmpSystem, StopPolicy};
use laec_workloads::smp::{false_sharing, SHARED_BASE};

const A: u32 = 0x1_0000;

fn two_cores() -> CoherentMemory {
    CoherentMemory::with_protocol(HierarchyConfig::ngmp_write_back(), 2, ProtocolKind::Moesi)
}

/// Drives core 0's copy of `A` into the requested start state.
fn reach(memory: &CoherentMemory, state: LineState) {
    memory.preload_word(A, 0xC0DE);
    match state {
        LineState::Invalid => {}
        LineState::Exclusive => {
            memory.load(0, A, 0);
        }
        LineState::Shared => {
            memory.load(0, A, 0);
            memory.load(1, A, 10);
        }
        LineState::Modified => {
            memory.store(0, A, 0xBEEF, 0);
        }
        LineState::Owned => {
            memory.store(0, A, 0xBEEF, 0);
            memory.load(1, A, 10);
        }
        other => unreachable!("{other:?} is not a MOESI state"),
    }
    assert_eq!(memory.state(0, A), state, "setup failed for {state:?}");
}

#[test]
fn read_fills_match_mesi() {
    let memory = two_cores();
    memory.preload_word(A, 0xC0DE);
    memory.load(0, A, 0);
    assert_eq!(memory.state(0, A), LineState::Exclusive, "alone: E");
    memory.load(1, A, 10);
    assert_eq!(memory.state(0, A), LineState::Shared, "snooped: S");
    assert_eq!(memory.state(1, A), LineState::Shared, "joiner: S");
}

#[test]
fn from_modified_remote_read_moves_to_owned_and_supplies() {
    let memory = two_cores();
    reach(&memory, LineState::Modified);
    let response = memory.load(1, A, 20);
    assert_eq!(response.value, 0xBEEF, "the owner forwarded dirty data");
    assert_eq!(memory.state(0, A), LineState::Owned, "no writeback: O");
    assert_eq!(memory.state(1, A), LineState::Shared);
    assert_eq!(memory.coherence_stats().interventions, 1);
    assert_eq!(
        memory.peek_memory(A),
        0xC0DE,
        "memory stays stale while an owner exists"
    );
}

#[test]
fn from_owned_local_read_stays_owned() {
    let memory = two_cores();
    reach(&memory, LineState::Owned);
    assert!(memory.load(0, A, 20).dl1_hit);
    assert_eq!(memory.state(0, A), LineState::Owned);
}

#[test]
fn the_owner_keeps_supplying_readers_cache_to_cache() {
    let memory = two_cores();
    reach(&memory, LineState::Owned);
    memory.evict(1, A, 50); // the reader loses its copy...
    let response = memory.load(1, A, 60); // ...and comes back for it
    assert_eq!(response.value, 0xBEEF);
    assert_eq!(memory.state(0, A), LineState::Owned, "still the owner");
    assert_eq!(memory.coherence_stats().interventions, 2);
    assert_eq!(memory.peek_memory(A), 0xC0DE, "memory still never touched");
}

#[test]
fn from_owned_local_write_upgrades_to_modified_and_invalidates() {
    let memory = two_cores();
    reach(&memory, LineState::Owned);
    let before = memory.coherence_stats();
    let response = memory.store(0, A, 0x7777, 20);
    assert!(response.dl1_hit);
    assert_eq!(memory.state(0, A), LineState::Modified);
    assert_eq!(
        memory.state(1, A),
        LineState::Invalid,
        "BusUpgr kills copies"
    );
    let after = memory.coherence_stats();
    assert_eq!(after.upgrades, before.upgrades + 1);
    assert_eq!(after.invalidations, before.invalidations + 1);
    assert_eq!(memory.peek_coherent(A), 0x7777);
}

#[test]
fn from_owned_remote_write_invalidates_the_owner() {
    let memory = two_cores();
    reach(&memory, LineState::Owned); // core 0 O, core 1 S
    memory.store(1, A, 0x5555, 20);
    assert_eq!(memory.state(0, A), LineState::Invalid);
    assert_eq!(memory.state(1, A), LineState::Modified);
    // Safe to drop the owner's dirty copy: the writer's own S copy already
    // held the owner-supplied data before it overwrote it.
    assert_eq!(memory.peek_coherent(A), 0x5555);
}

#[test]
fn from_owned_eviction_writes_back() {
    let memory = two_cores();
    reach(&memory, LineState::Owned);
    memory.evict(1, A, 50); // the clean S copy leaves silently
    memory.evict(0, A, 100); // the owner must write back
    assert_eq!(memory.state(0, A), LineState::Invalid);
    assert_eq!(memory.load(1, A, 200).value, 0xBEEF, "dirty data survived");
}

#[test]
fn a_write_miss_takes_the_dirty_line_cache_to_cache() {
    let memory = two_cores();
    memory.preload_word(A, 0xC0DE);
    memory.store(1, A, 0xFACE, 0); // M in core 1
    memory.store(0, A, 0x1111, 10); // RdX: supplied + invalidated
    assert_eq!(memory.state(0, A), LineState::Modified);
    assert_eq!(memory.state(1, A), LineState::Invalid);
    assert_eq!(memory.coherence_stats().interventions, 1);
    assert_eq!(memory.coherence_stats().invalidations, 1);
    assert_eq!(memory.peek_coherent(A), 0x1111);
    assert_eq!(
        memory.peek_memory(A),
        0xC0DE,
        "the line never touched memory"
    );
}

#[test]
fn false_sharing_still_ping_pongs_under_moesi() {
    let run = |cores: u32| {
        let workload = false_sharing(cores, 64);
        let configs = vec![PipelineConfig::laec(); workload.programs.len()];
        let mut system = SmpSystem::with_protocol(workload.programs, configs, ProtocolKind::Moesi);
        let result = system.run(StopPolicy::AllHalt);
        for core in 0..cores {
            assert_eq!(
                system.memory().peek_coherent(SHARED_BASE + 4 * core),
                64,
                "core {core} counter at {cores} cores"
            );
        }
        result.coherence
    };
    let two = run(2);
    let four = run(4);
    assert!(two.invalidations > 0, "MOESI still invalidates on write");
    assert!(
        four.invalidations > 2 * two.invalidations,
        "more cores, more ping-pong: {} vs {}",
        four.invalidations,
        two.invalidations
    );
    assert_eq!(two.bus_updates, 0, "no update traffic in MOESI");
    assert_eq!(four.bus_updates, 0);
}

#[test]
fn moesi_runs_are_deterministic() {
    let run = || {
        let workload = laec_workloads::smp::parallel_reduction(4, 128);
        let configs = vec![PipelineConfig::laec(); workload.programs.len()];
        let mut system = SmpSystem::with_protocol(workload.programs, configs, ProtocolKind::Moesi);
        let result = system.run(StopPolicy::AllHalt);
        (
            result.final_checksum,
            result.coherence,
            result
                .cores
                .iter()
                .map(|c| c.stats.cycles)
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run(), "identical systems run identically");
}

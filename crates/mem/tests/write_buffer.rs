//! Direct edge-case tests of the NGMP store buffer (`laec_mem::WriteBuffer`):
//! full-buffer backpressure accounting, drain ordering with aliasing
//! stores, and flush-on-fence semantics.

use laec_mem::{PendingStore, WriteBuffer};

fn store(address: u32, value: u32) -> PendingStore {
    PendingStore {
        address,
        value,
        byte_mask: 0xF,
    }
}

#[test]
fn full_buffer_counts_every_rejected_push_until_fully_drained() {
    let mut buffer = WriteBuffer::new(3);
    for i in 0..3 {
        assert!(buffer.push(store(4 * i, i)));
    }
    assert_eq!(buffer.len(), buffer.capacity());
    assert!(buffer.must_stall_store());
    // Every retry while full (or draining) is a counted stall.
    for attempt in 1..=5 {
        assert!(!buffer.push(store(0x100, attempt)));
        assert_eq!(buffer.full_stalls(), u64::from(attempt));
    }
    // Partial drain is not enough: the NGMP drains *completely*.
    buffer.pop();
    buffer.pop();
    assert_eq!(buffer.len(), 1);
    assert!(buffer.must_stall_store());
    assert!(!buffer.push(store(0x100, 9)));
    assert_eq!(buffer.full_stalls(), 6);
    buffer.pop();
    assert!(buffer.is_empty());
    assert!(!buffer.must_stall_store());
    assert!(buffer.push(store(0x100, 9)));
    assert_eq!(buffer.enqueues(), 4);
}

#[test]
fn drain_preserves_program_order_for_aliasing_stores() {
    // Two stores to the same word plus interleaved neighbours: FIFO order
    // is what makes the later store win in the DL1, so any reordering
    // would be an architectural bug.
    let mut buffer = WriteBuffer::new(8);
    buffer.push(store(0x40, 1));
    buffer.push(store(0x44, 2));
    buffer.push(store(0x40, 3));
    buffer.push(PendingStore {
        address: 0x44,
        value: 4,
        byte_mask: 0b0001,
    });
    let drained: Vec<PendingStore> = std::iter::from_fn(|| buffer.pop()).collect();
    assert_eq!(
        drained
            .iter()
            .map(|s| (s.address, s.value))
            .collect::<Vec<_>>(),
        vec![(0x40, 1), (0x44, 2), (0x40, 3), (0x44, 4)],
    );
    assert_eq!(drained[3].byte_mask, 0b0001, "masks travel with the store");
}

#[test]
fn fence_flushes_everything_in_order_and_clears_backpressure() {
    let mut buffer = WriteBuffer::new(2);
    buffer.push(store(0x10, 7));
    buffer.push(store(0x20, 8));
    // Hitting capacity arms the drain-until-empty backpressure mode.
    assert!(buffer.must_stall_store());
    let flushed = buffer.drain_for_fence();
    assert_eq!(
        flushed.iter().map(|s| s.address).collect::<Vec<_>>(),
        vec![0x10, 0x20],
        "the fence drains in FIFO order"
    );
    assert!(buffer.is_empty());
    assert!(
        !buffer.must_stall_store(),
        "the fence emptied the buffer, so backpressure must be gone"
    );
    assert!(buffer.push(store(0x30, 9)));
    assert_eq!(buffer.len(), 1);
}

#[test]
fn fence_on_an_empty_buffer_is_a_no_op() {
    let mut buffer = WriteBuffer::new(4);
    assert!(buffer.drain_for_fence().is_empty());
    assert!(!buffer.must_stall_store());
    assert_eq!(buffer.enqueues(), 0);
    assert_eq!(buffer.full_stalls(), 0);
}

#[test]
fn conflict_detection_after_partial_drain() {
    let mut buffer = WriteBuffer::new(4);
    buffer.push(store(0x100, 1));
    buffer.push(store(0x104, 2));
    assert!(buffer.has_store_to(0x100));
    buffer.pop();
    assert!(
        !buffer.has_store_to(0x100),
        "a drained store no longer forces loads to wait"
    );
    assert!(
        buffer.has_store_to(0x106),
        "aliased by the aligned 0x104 word"
    );
    assert_eq!(buffer.peek().map(|s| s.address), Some(0x104));
}

//! Workspace discovery and the full-tree lint run.
//!
//! The scan surface is the *shipped* source: `src/`, every `crates/*/src/`
//! and every `stubs/*/src/` (the vendored dependency stand-ins are our
//! code too).  `tests/`, `benches/` and `examples/` directories never feed
//! report bytes — they are exercised by tier-1 and excluded here, exactly
//! like `#[cfg(test)]` modules inside scanned files.  Files are visited in
//! sorted path order so two runs over the same tree produce identical
//! reports.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::{sort_findings, Finding};
use crate::lints::lint_file;

/// Collects the workspace-relative paths of every `.rs` file on the scan
/// surface under `root`, sorted.
///
/// # Errors
///
/// Propagates I/O errors from directory walks; a missing optional root
/// (e.g. no `stubs/`) is skipped silently.
pub fn scan_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut push_tree = |dir: PathBuf| -> io::Result<()> {
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
        Ok(())
    };
    push_tree(root.join("src"))?;
    for parent in ["crates", "stubs"] {
        let parent_dir = root.join(parent);
        if !parent_dir.is_dir() {
            continue;
        }
        let mut entries: Vec<PathBuf> = fs::read_dir(&parent_dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|entry| entry.path())
            .collect();
        entries.sort();
        for entry in entries {
            push_tree(entry.join("src"))?;
        }
    }
    let mut relative: Vec<PathBuf> = files
        .into_iter()
        .map(|file| {
            file.strip_prefix(root)
                .map(Path::to_path_buf)
                .unwrap_or(file)
        })
        .collect();
    relative.sort();
    Ok(relative)
}

fn collect_rs(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, files)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lints every file on the scan surface under `root`, returning the sorted
/// findings.
///
/// # Errors
///
/// Propagates I/O errors from the walk or from reading a source file.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for file in scan_files(root)? {
        let source = fs::read_to_string(root.join(&file))?;
        let display = file
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        findings.extend(lint_file(&display, &source));
    }
    sort_findings(&mut findings);
    Ok(findings)
}

//! Small-model checking of the [`CoherenceProtocol`] decision tables.
//!
//! The conformance suites in `crates/mem/tests/` pin individual
//! transitions; this module goes further and *exhaustively explores* every
//! state a small system can reach under a protocol's table, proving safety
//! invariants that no enumerated test list can cover: with up to four
//! caches contending on one line, every interleaving of reads, writes and
//! evictions is walked to a fixpoint (breadth-first, so counterexamples
//! are shortest), and every reached state is checked against
//!
//! * **single writer** — at most one `M` copy, and an `M` or `E` copy is
//!   the *only* valid copy of the line,
//! * **unique owner** — at most one `O` (MOESI) and at most one `Sm`
//!   (Dragon): exactly one cache may hold the writeback obligation of a
//!   shared dirty line,
//! * **single dirty copy** — at most one of `M`/`Sm`/`O` overall,
//! * **state-bit honesty** — every reachable per-cache state encodes
//!   within the protocol's declared
//!   [`state_bits`](CoherenceProtocol::state_bits), so a
//!   `FaultTarget::State` campaign's strike surface is exactly as wide as
//!   the protocol claims.
//!
//! One line suffices: the substrate treats lines independently (there is
//! no cross-line coherence state), so any multi-line violation projects
//! onto a single-line one.  The transition relation below mirrors
//! `laec_smp::CoherentMemory`'s write-back/write-allocate flows — the
//! shape every `smpN` platform runs — consulting the *real* trait objects,
//! so a future table edit is model-checked, not grandfathered.

use std::collections::BTreeMap;

use laec_mem::{CoherenceProtocol, LineState, LocalWriteAction};

/// The per-cache line states of one explored system configuration.
pub type SystemState = Vec<LineState>;

/// One step a cache can take against the shared line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A load; misses snoop and fill, hits do nothing.
    Read,
    /// A store through the write-back/write-allocate path.
    Write,
    /// Capacity eviction of the cache's copy (writeback if dirty).
    Evict,
}

impl Op {
    const ALL: [Op; 3] = [Op::Read, Op::Write, Op::Evict];

    fn label(self) -> &'static str {
        match self {
            Op::Read => "read",
            Op::Write => "write",
            Op::Evict => "evict",
        }
    }
}

/// A safety violation with its shortest reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke.
    pub invariant: String,
    /// The offending system state, as state labels per cache.
    pub state: Vec<&'static str>,
    /// The shortest op sequence reaching it from the all-Invalid start.
    pub trace: Vec<String>,
}

/// The result of exhaustively exploring one protocol on one system size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolReport {
    /// The protocol's name.
    pub protocol: String,
    /// Number of caches in the model.
    pub caches: usize,
    /// Distinct reachable system states.
    pub reachable_states: usize,
    /// Transitions explored.
    pub transitions: usize,
    /// Violations found (empty = the table is safe at this size).
    pub violations: Vec<Violation>,
}

impl ProtocolReport {
    /// `true` when every invariant held on every reachable state.
    #[must_use]
    pub fn safe(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Applies `op` by cache `actor` to `state`, mirroring the
/// `laec_smp::CoherentMemory` write-back/write-allocate flows.
fn step(table: &dyn CoherenceProtocol, state: &SystemState, actor: usize, op: Op) -> SystemState {
    let mut next = state.clone();
    match op {
        Op::Read => {
            if next[actor].is_valid() {
                return next; // read hit: no coherence activity
            }
            let mut sharers = false;
            for (j, remote) in next.iter_mut().enumerate() {
                if j != actor && remote.is_valid() {
                    sharers = true;
                    *remote = table.snooped_read_next(*remote);
                }
            }
            next[actor] = table.read_fill_state(sharers);
        }
        Op::Write => match table.local_write_action(next[actor]) {
            LocalWriteAction::Silent if next[actor].is_valid() => {
                // Write hit, no bus action: `Cache::write_word_masked`
                // installs Modified.
                next[actor] = LineState::Modified;
            }
            LocalWriteAction::Silent => {
                // Write miss.
                if table.uses_update_bus() {
                    // Dragon allocates with a plain read, then broadcasts
                    // the written word into the surviving copies.
                    let mut sharers = false;
                    for (j, remote) in next.iter_mut().enumerate() {
                        if j != actor && remote.is_valid() {
                            sharers = true;
                            *remote = table.snooped_read_next(*remote);
                        }
                    }
                    if sharers {
                        for (j, remote) in next.iter_mut().enumerate() {
                            if j != actor && remote.is_valid() {
                                *remote = LineState::SharedClean;
                            }
                        }
                        next[actor] = LineState::SharedModified;
                    } else {
                        next[actor] = LineState::Modified;
                    }
                } else {
                    // BusRdX: invalidate every remote copy, fill, write.
                    for (j, remote) in next.iter_mut().enumerate() {
                        if j != actor {
                            *remote = LineState::Invalid;
                        }
                    }
                    next[actor] = LineState::Modified;
                }
            }
            LocalWriteAction::Invalidate => {
                // BusUpgr, then the local write dirties the copy.
                for (j, remote) in next.iter_mut().enumerate() {
                    if j != actor {
                        *remote = LineState::Invalid;
                    }
                }
                next[actor] = LineState::Modified;
            }
            LocalWriteAction::Update => {
                // BusUpd: merge into every remote copy (which moves to
                // SharedClean); hold Sm while copies survive.
                let mut still_shared = false;
                for (j, remote) in next.iter_mut().enumerate() {
                    if j != actor && remote.is_valid() {
                        still_shared = true;
                        *remote = LineState::SharedClean;
                    }
                }
                next[actor] = if still_shared {
                    LineState::SharedModified
                } else {
                    LineState::Modified
                };
            }
        },
        Op::Evict => {
            next[actor] = LineState::Invalid;
        }
    }
    next
}

/// Checks every safety invariant on one state; returns the broken ones.
fn check_invariants(table: &dyn CoherenceProtocol, state: &SystemState) -> Vec<String> {
    let mut broken = Vec::new();
    let count = |wanted: LineState| state.iter().filter(|&&s| s == wanted).count();
    let valid = state.iter().filter(|s| s.is_valid()).count();
    let dirty = state.iter().filter(|s| s.is_dirty()).count();

    let modified = count(LineState::Modified);
    if modified > 1 {
        broken.push(format!("{modified} caches hold M (at most one allowed)"));
    }
    if modified == 1 && valid > 1 {
        broken.push("an M copy coexists with another valid copy".to_string());
    }
    if count(LineState::Exclusive) >= 1 && valid > 1 {
        broken.push("an E copy coexists with another valid copy".to_string());
    }
    let owned = count(LineState::Owned);
    if owned > 1 {
        broken.push(format!("{owned} caches hold O (unique owner violated)"));
    }
    let shared_modified = count(LineState::SharedModified);
    if shared_modified > 1 {
        broken.push(format!(
            "{shared_modified} caches hold Sm (unique dirty sharer violated)"
        ));
    }
    if dirty > 1 {
        broken.push(format!(
            "{dirty} dirty copies (M/Sm/O) hold the writeback obligation at once"
        ));
    }
    let limit = 1u8
        .checked_shl(table.state_bits())
        .map_or(u8::MAX, |shifted| shifted.saturating_sub(1));
    for s in state {
        if s.to_bits() > limit {
            broken.push(format!(
                "state {} encodes as {:#05b}, outside the declared {} state bit(s)",
                s.label(),
                s.to_bits(),
                table.state_bits(),
            ));
        }
    }
    broken
}

/// Exhaustively explores `table` over a `caches`-cache single-line system
/// and checks every reachable state against the safety invariants.
#[must_use]
pub fn check_protocol(table: &dyn CoherenceProtocol, caches: usize) -> ProtocolReport {
    let start: SystemState = vec![LineState::Invalid; caches];
    // BFS with parent pointers so violation traces are shortest.
    let mut parents: BTreeMap<Vec<u8>, Option<(Vec<u8>, String)>> = BTreeMap::new();
    let key = |state: &SystemState| -> Vec<u8> { state.iter().map(|s| s.to_bits()).collect() };
    parents.insert(key(&start), None);
    let mut frontier = std::collections::VecDeque::from([start]);
    let mut violations = Vec::new();
    let mut transitions = 0usize;

    while let Some(state) = frontier.pop_front() {
        for broken in check_invariants(table, &state) {
            violations.push(Violation {
                invariant: broken,
                state: state.iter().map(|s| s.label()).collect(),
                trace: trace_to(&parents, &key(&state)),
            });
        }
        for actor in 0..caches {
            for op in Op::ALL {
                transitions += 1;
                let next = step(table, &state, actor, op);
                let next_key = key(&next);
                if let std::collections::btree_map::Entry::Vacant(slot) = parents.entry(next_key) {
                    slot.insert(Some((key(&state), format!("cache{actor} {}", op.label()))));
                    frontier.push_back(next);
                }
            }
        }
    }

    violations.sort_by(|a, b| (a.trace.len(), &a.invariant).cmp(&(b.trace.len(), &b.invariant)));
    ProtocolReport {
        protocol: table.name().to_string(),
        caches,
        reachable_states: parents.len(),
        transitions,
        violations,
    }
}

/// Reconstructs the op sequence from the all-Invalid start to `state`.
fn trace_to(parents: &BTreeMap<Vec<u8>, Option<(Vec<u8>, String)>>, state: &[u8]) -> Vec<String> {
    let mut trace = Vec::new();
    let mut cursor = state.to_vec();
    while let Some(Some((previous, op))) = parents.get(&cursor) {
        trace.push(op.clone());
        cursor.clone_from(previous);
    }
    trace.reverse();
    trace
}

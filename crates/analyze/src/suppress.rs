//! Comment-based lint suppressions.
//!
//! The only sanctioned way to silence a finding is a justified comment:
//!
//! ```text
//! // laec-lint: allow(nondet-iteration) -- checksum is commutative, order cannot reach bytes
//! ```
//!
//! A suppression applies to the line it shares with code (a trailing
//! comment) or, when it stands alone on its line, to the next line that
//! carries code.  Policy is enforced by two meta-lints:
//!
//! * [`BARE_SUPPRESSION`]: an `allow(...)` without `-- <justification>`
//!   text is itself a finding — the whole point is an auditable record of
//!   *why* each exception is sound.
//! * [`UNUSED_SUPPRESSION`]: an `allow(...)` whose lint no longer fires on
//!   its target line is dead and must be removed, so the suppression set
//!   can never drift away from the findings it was written for.

use crate::diag::{Finding, Severity};
use crate::lexer::Token;

/// Lint id of the missing-justification meta-lint.
pub const BARE_SUPPRESSION: &str = "bare-suppression";
/// Lint id of the dead-suppression meta-lint.
pub const UNUSED_SUPPRESSION: &str = "unused-suppression";

/// The comment prefix that opens a suppression.
const MARKER: &str = "laec-lint:";

/// One parsed suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The lint ids inside `allow(…)`.
    pub lints: Vec<String>,
    /// Line of the comment itself.
    pub line: u32,
    /// Column of the comment itself.
    pub col: u32,
    /// The code line the suppression governs.
    pub target_line: u32,
    /// `true` when a non-empty `-- justification` trails the `allow(…)`.
    pub justified: bool,
}

/// Extracts every suppression from a token stream, resolving each to the
/// code line it governs.
#[must_use]
pub fn collect(tokens: &[Token<'_>]) -> Vec<Suppression> {
    let mut suppressions = Vec::new();
    for (index, token) in tokens.iter().enumerate() {
        if !token.kind.is_comment() {
            continue;
        }
        let Some((lints, justified)) = parse_comment(token.text) else {
            continue;
        };
        let trailing = tokens[..index]
            .iter()
            .rev()
            .take_while(|t| t.line == token.line)
            .any(|t| !t.kind.is_comment());
        let target_line = if trailing {
            token.line
        } else {
            tokens[index + 1..]
                .iter()
                .find(|t| !t.kind.is_comment())
                .map_or(token.line, |t| t.line)
        };
        suppressions.push(Suppression {
            lints,
            line: token.line,
            col: token.col,
            target_line,
            justified,
        });
    }
    suppressions
}

/// Parses one comment's text; `None` when it is not a suppression at all.
fn parse_comment(text: &str) -> Option<(Vec<String>, bool)> {
    let body = text.trim_start_matches('/').trim();
    let rest = body.strip_prefix(MARKER)?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let lints: Vec<String> = rest[..close]
        .split(',')
        .map(|id| id.trim().to_string())
        .filter(|id| !id.is_empty())
        .collect();
    let tail = rest[close + 1..].trim();
    let justified = tail
        .strip_prefix("--")
        .is_some_and(|justification| !justification.trim().is_empty());
    Some((lints, justified))
}

/// Applies `suppressions` to `findings`: drops suppressed findings and
/// appends the meta-lint findings (bare suppressions, unused suppressions).
#[must_use]
pub fn apply(file: &str, findings: Vec<Finding>, suppressions: &[Suppression]) -> Vec<Finding> {
    let mut used = vec![false; suppressions.len()];
    let mut kept: Vec<Finding> = Vec::with_capacity(findings.len());
    for finding in findings {
        let matched = suppressions.iter().enumerate().find(|(_, s)| {
            s.justified
                && s.target_line == finding.line
                && s.lints.iter().any(|lint| lint == finding.lint)
        });
        if let Some((index, _)) = matched {
            used[index] = true;
        } else {
            kept.push(finding);
        }
    }
    for (suppression, used) in suppressions.iter().zip(used) {
        if !suppression.justified {
            kept.push(Finding {
                lint: BARE_SUPPRESSION,
                severity: Severity::Error,
                file: file.to_string(),
                line: suppression.line,
                col: suppression.col,
                message: format!(
                    "suppression of `{}` has no justification",
                    suppression.lints.join(", "),
                ),
                suggestion: "append ` -- <why this exception is sound>` to the comment".to_string(),
            });
        } else if !used {
            kept.push(Finding {
                lint: UNUSED_SUPPRESSION,
                severity: Severity::Error,
                file: file.to_string(),
                line: suppression.line,
                col: suppression.col,
                message: format!(
                    "suppression of `{}` matches no finding on line {}",
                    suppression.lints.join(", "),
                    suppression.target_line,
                ),
                suggestion: "delete the stale suppression comment".to_string(),
            });
        }
    }
    kept
}

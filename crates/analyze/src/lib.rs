//! `laec_analyze` — static analysis for the determinism contract.
//!
//! Everything this workspace claims rests on byte-identical campaign
//! reports across thread counts, shard/resume splits and execution
//! engines.  CI's `cmp` steps enforce that *dynamically* for the schedules
//! they run; this crate enforces it *statically*, in two fronts:
//!
//! 1. **Determinism lints** ([`lints`]) — a pass framework over a
//!    hand-rolled Rust token scanner ([`lexer`]; no crates.io access, so no
//!    `syn`) that proves the absence of whole classes of violations at the
//!    source level: unordered hash-collection iteration feeding reports,
//!    wall-clock reads outside the sanctioned module, stray stdout writes,
//!    ambient-parallelism queries, environment reads, and panics in
//!    library code.  Exceptions are comment-based suppressions
//!    ([`suppress`]) that *must* carry a justification — an unjustified or
//!    stale suppression is itself a finding.
//! 2. **Protocol model checking** ([`protocols`]) — exhaustive
//!    exploration of each [`CoherenceProtocol`](laec_mem::CoherenceProtocol)
//!    decision table over small systems (up to four caches on one line),
//!    statically proving the single-writer / unique-owner / state-bit
//!    invariants on every reachable state.
//!
//! The `laec-lint` binary fronts both: a plain run lints the workspace
//! (`--deny all` gates CI), `--protocols` model-checks the tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod lints;
pub mod protocols;
pub mod suppress;
pub mod workspace;

pub use diag::{render_json, render_text, Finding, Severity};
pub use lints::{lint_file, CATALOG};
pub use protocols::{check_protocol, ProtocolReport};
pub use workspace::lint_workspace;

//! The determinism lint catalogue and the pass framework.
//!
//! Every result this workspace produces rests on one invariant: campaign
//! reports are **byte-identical** across thread counts, shard/resume splits
//! and execution engines.  CI enforces that dynamically with `cmp` steps,
//! but a `cmp` can only cover the schedules it runs.  These lints prove the
//! *absence* of whole classes of violations at the source level:
//!
//! | lint | severity | fires on |
//! |------|----------|----------|
//! | `nondet-iteration` | error | iterating a `HashMap`/`HashSet` binding (order is randomized per process; anything it feeds can reach report bytes) |
//! | `wall-clock` | error | `Instant::now` / `SystemTime` outside the sanctioned `laec_obs` wallclock module and the bench harness |
//! | `stdout-bytes` | error | `print!`/`println!` outside the CLI render paths (stdout *is* the byte-compared report surface) |
//! | `panic-in-library` | warning | `.unwrap()`/`.expect(…)`/`panic!` in non-test library code |
//! | `ambient-parallelism` | error | `available_parallelism`/`thread::current` — results must not depend on where or how wide they run |
//! | `env-read` | error | `std::env::var` outside cli/bench/stubs — ambient configuration must flow through the spec |
//!
//! Plus the two meta-lints from [`crate::suppress`]: `bare-suppression`
//! (an `allow` without justification) and `unused-suppression` (a
//! justified `allow` whose lint no longer fires).
//!
//! The passes run on the token stream of [`crate::lexer`] — there is no
//! AST, so `nondet-iteration` is a *heuristic*: it tracks identifiers
//! bound with an explicit `HashMap`/`HashSet` type annotation in the same
//! file and flags iteration-shaped uses of them (`.iter()`, `.keys()`,
//! `.values()`, `.drain()`, `.retain()`, `for … in &map`, …).  An
//! un-annotated `collect()` escapes it; the lint is a tripwire for the
//! common shapes, not a type checker.  Code under `#[cfg(test)]` is
//! exempt from every lint: tests are exercised by tier-1, and they are not
//! part of the shipped determinism surface.

use std::collections::BTreeSet;

use crate::diag::{Finding, Severity};
use crate::lexer::{lex, Token, TokenKind};
use crate::suppress;

/// One catalogue entry.
#[derive(Debug, Clone, Copy)]
pub struct Lint {
    /// Stable id, used in diagnostics and `allow(…)` suppressions.
    pub id: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line description for `--list`.
    pub summary: &'static str,
}

/// Every lint this crate knows, including the suppression meta-lints.
pub const CATALOG: &[Lint] = &[
    Lint {
        id: "nondet-iteration",
        severity: Severity::Error,
        summary: "iterating a HashMap/HashSet binding — iteration order is \
                  randomized per process and can reach report bytes",
    },
    Lint {
        id: "wall-clock",
        severity: Severity::Error,
        summary: "Instant::now/SystemTime outside laec_obs::wallclock and the \
                  bench harness — timings are excluded from byte comparison \
                  only when they flow through the sanctioned module",
    },
    Lint {
        id: "stdout-bytes",
        severity: Severity::Error,
        summary: "print!/println! outside the CLI render paths — stdout is \
                  the byte-compared report surface",
    },
    Lint {
        id: "panic-in-library",
        severity: Severity::Warning,
        summary: "unwrap/expect/panic! in non-test library code — campaign \
                  engines must fail as values, not aborts",
    },
    Lint {
        id: "ambient-parallelism",
        severity: Severity::Error,
        summary: "available_parallelism/thread::current in result-affecting \
                  code — reports must not depend on where they run",
    },
    Lint {
        id: "env-read",
        severity: Severity::Error,
        summary: "std::env::var outside cli/bench/stubs — configuration must \
                  flow through the campaign spec",
    },
    Lint {
        id: suppress::BARE_SUPPRESSION,
        severity: Severity::Error,
        summary: "a laec-lint allow(…) comment without `-- <justification>`",
    },
    Lint {
        id: suppress::UNUSED_SUPPRESSION,
        severity: Severity::Error,
        summary: "a justified allow(…) whose lint no longer fires on its line",
    },
];

/// Looks a lint up by id.
#[must_use]
pub fn lint(id: &str) -> Option<&'static Lint> {
    CATALOG.iter().find(|lint| lint.id == id)
}

/// Path policy: is `lint_id` enforced in the file at workspace-relative
/// `path` (forward slashes)?  The allowlists mirror the architecture:
/// stdout belongs to the CLI front-ends, wall-clock to the observability
/// crate's one sanctioned module, the fleet service's heartbeat clock
/// (worker staleness is wall-clock by nature and never touches a report
/// byte) and the bench harness, environment reads to the invocation
/// layer.
#[must_use]
pub fn lint_enabled(lint_id: &str, path: &str) -> bool {
    let any = |prefixes: &[&str]| prefixes.iter().any(|prefix| path.starts_with(prefix));
    match lint_id {
        "wall-clock" => !any(&[
            "crates/obs/src/wallclock.rs",
            "crates/fleet/src/clock.rs",
            "crates/bench/",
            "stubs/criterion/",
        ]),
        "stdout-bytes" => !any(&[
            "crates/cli/",
            "crates/analyze/",
            "crates/bench/",
            "stubs/criterion/",
        ]),
        // The CLI front-ends are binaries, not libraries: a panic there is
        // an exit code, not a corrupted embedding.  The bench harness is a
        // dev-only driver (panicking on bad setup is the bench idiom), and a
        // proc-macro panic surfaces as a compile error at the derive site —
        // neither can ever abort a campaign run.
        "panic-in-library" => !any(&[
            "crates/cli/",
            "crates/analyze/src/bin/",
            "crates/bench/",
            "stubs/serde_derive/",
        ]),
        "env-read" => !any(&["crates/cli/", "crates/bench/", "stubs/"]),
        _ => true,
    }
}

/// Iteration-shaped method names on hash collections.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Lints one file: lexes, runs every enabled pass, applies suppressions,
/// and returns the surviving findings (sorted by the caller).
#[must_use]
pub fn lint_file(path: &str, source: &str) -> Vec<Finding> {
    let tokens = lex(source);
    let suppressions = suppress::collect(&tokens);
    let code: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.kind.is_comment()).collect();
    let in_test = test_regions(&code);
    let mut findings = Vec::new();

    let mut emit = |lint_id: &'static str, token: &Token<'_>, message: String, suggestion: &str| {
        let severity = lint(lint_id).map_or(Severity::Error, |l| l.severity);
        findings.push(Finding {
            lint: lint_id,
            severity,
            file: path.to_string(),
            line: token.line,
            col: token.col,
            message,
            suggestion: suggestion.to_string(),
        });
    };

    let hash_bindings = hash_typed_bindings(&code);
    for (i, token) in code.iter().enumerate() {
        if in_test[i] || token.kind != TokenKind::Ident {
            continue;
        }
        let next = |offset: usize| code.get(i + offset).map(|t| t.text);
        let text = token.text;

        if lint_enabled("wall-clock", path) {
            if text == "Instant"
                && next(1) == Some(":")
                && next(2) == Some(":")
                && next(3) == Some("now")
            {
                emit(
                    "wall-clock",
                    token,
                    "wall-clock read (`Instant::now`) outside the sanctioned timing module".into(),
                    "route timing through laec_obs::wallclock so it stays excluded from every \
                     byte-comparison surface",
                );
            }
            if text == "SystemTime" {
                emit(
                    "wall-clock",
                    token,
                    "wall-clock read (`SystemTime`) outside the sanctioned timing module".into(),
                    "route timing through laec_obs::wallclock so it stays excluded from every \
                     byte-comparison surface",
                );
            }
        }

        if lint_enabled("stdout-bytes", path)
            && (text == "print" || text == "println")
            && next(1) == Some("!")
        {
            emit(
                "stdout-bytes",
                token,
                format!("`{text}!` writes to stdout outside the CLI render paths"),
                "return a String (render_* idiom) or write to stderr; stdout is the \
                 byte-compared report surface",
            );
        }

        if lint_enabled("panic-in-library", path) {
            let after_dot = i > 0 && code[i - 1].text == ".";
            if (text == "unwrap" || text == "expect") && after_dot && next(1) == Some("(") {
                emit(
                    "panic-in-library",
                    token,
                    format!("`.{text}(…)` can abort library code"),
                    "propagate a Result/Option, or suppress with a justification naming the \
                     invariant that makes the panic unreachable",
                );
            }
            if text == "panic" && next(1) == Some("!") {
                emit(
                    "panic-in-library",
                    token,
                    "`panic!` aborts library code".into(),
                    "return a typed error, or suppress with a justification naming the \
                     invariant that makes the panic unreachable",
                );
            }
        }

        if lint_enabled("ambient-parallelism", path) {
            if text == "available_parallelism" {
                emit(
                    "ambient-parallelism",
                    token,
                    "`available_parallelism` queries the host — results must not depend on it"
                        .into(),
                    "take the width as an explicit parameter; only schedule-invariant code \
                     (proven by the CI thread-count cmp) may suppress this",
                );
            }
            if text == "thread"
                && next(1) == Some(":")
                && next(2) == Some(":")
                && next(3) == Some("current")
            {
                emit(
                    "ambient-parallelism",
                    token,
                    "`thread::current` leaks scheduler identity into the computation".into(),
                    "pass an explicit worker index instead of asking the scheduler",
                );
            }
        }

        if lint_enabled("env-read", path)
            && text == "env"
            && next(1) == Some(":")
            && next(2) == Some(":")
            && matches!(next(3), Some("var" | "var_os" | "vars" | "vars_os"))
        {
            emit(
                "env-read",
                token,
                "environment read outside the invocation layer".into(),
                "thread the value through the campaign spec or a function parameter",
            );
        }

        if lint_enabled("nondet-iteration", path) && hash_bindings.contains(text) {
            // map.iter() / map.keys() / …
            if next(1) == Some(".") {
                if let Some(method) = next(2) {
                    if ITER_METHODS.contains(&method) {
                        emit(
                            "nondet-iteration",
                            token,
                            format!(
                                "`{text}.{method}()` iterates a hash collection in \
                                 randomized order"
                            ),
                            "switch the binding to BTreeMap/BTreeSet, or suppress with a \
                             justification proving order cannot reach output bytes",
                        );
                    }
                }
            }
            // for … in [& [mut]] map { … }
            if next(1) == Some("{") {
                let mut j = i;
                while j > 0 && matches!(code[j - 1].text, "&" | "mut") {
                    j -= 1;
                }
                if j > 0 && code[j - 1].text == "in" {
                    emit(
                        "nondet-iteration",
                        token,
                        format!("`for … in {text}` iterates a hash collection in randomized order"),
                        "switch the binding to BTreeMap/BTreeSet, or suppress with a \
                         justification proving order cannot reach output bytes",
                    );
                }
            }
        }
    }

    suppress::apply(path, findings, &suppressions)
}

/// Collects the identifiers bound in this file with an explicit
/// `HashMap`/`HashSet` type annotation: `let x: HashMap<…>`, struct fields
/// and parameters `x: &mut HashMap<…>`, including `std::collections::`
/// qualified paths.
fn hash_typed_bindings(code: &[&Token<'_>]) -> BTreeSet<String> {
    let mut bindings = BTreeSet::new();
    for (i, token) in code.iter().enumerate() {
        if token.kind != TokenKind::Ident || (token.text != "HashMap" && token.text != "HashSet") {
            continue;
        }
        if let Some(name) = binding_before(code, i) {
            bindings.insert(name.to_string());
        }
    }
    bindings
}

/// Walks left from a `HashMap`/`HashSet` token across `&`/`mut` and
/// `path::` segments to the `name :` introducing the annotation, if any.
fn binding_before<'a>(code: &[&Token<'a>], hash_index: usize) -> Option<&'a str> {
    let mut j = hash_index;
    loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        match code[j].text {
            "&" | "mut" => {}
            ":" if j > 0 && code[j - 1].text == ":" => {
                // A `::` path separator: step over it and its segment.
                if j < 2 || code[j - 2].kind != TokenKind::Ident {
                    return None;
                }
                j -= 2;
            }
            ":" => {
                // The single colon of `name: Type`.
                return (j > 0 && code[j - 1].kind == TokenKind::Ident).then(|| code[j - 1].text);
            }
            _ => return None,
        }
    }
}

/// Marks every code token inside a `#[cfg(test)]`-gated item.  The scan
/// understands both brace-bodied items (`mod tests { … }`, `fn t() { … }`)
/// and semicolon-terminated ones (`use …;`).
fn test_regions(code: &[&Token<'_>]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        let Some(attr_end) = match_cfg_test(code, i) else {
            i += 1;
            continue;
        };
        // Skip any further attributes between the cfg and the item.
        let mut j = attr_end + 1;
        while j < code.len() && code[j].text == "#" && code.get(j + 1).map(|t| t.text) == Some("[")
        {
            j = match_brackets(code, j + 1, "[", "]").map_or(code.len(), |end| end + 1);
        }
        // The gated item runs to its matching `}` or to a top-level `;`.
        let mut depth = 0usize;
        let mut end = code.len();
        for (offset, token) in code.iter().enumerate().skip(j) {
            match token.text {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = offset;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    end = offset;
                    break;
                }
                _ => {}
            }
        }
        for flag in in_test.iter_mut().take((end + 1).min(code.len())).skip(i) {
            *flag = true;
        }
        i = end.min(code.len() - 1) + 1;
    }
    in_test
}

/// If `code[start]` opens a `#[cfg(test)]`-style attribute (any `cfg(…)`
/// whose arguments mention `test`), returns the index of its closing `]`.
fn match_cfg_test(code: &[&Token<'_>], start: usize) -> Option<usize> {
    if code.get(start)?.text != "#" || code.get(start + 1)?.text != "[" {
        return None;
    }
    let close = match_brackets(code, start + 1, "[", "]")?;
    if code.get(start + 2)?.text != "cfg" || code.get(start + 3)?.text != "(" {
        return None;
    }
    code[start + 4..close]
        .iter()
        .any(|token| token.text == "test")
        .then_some(close)
}

/// Index of the bracket matching `code[open]` (which must be `open_text`).
fn match_brackets(
    code: &[&Token<'_>],
    open: usize,
    open_text: &str,
    close_text: &str,
) -> Option<usize> {
    debug_assert_eq!(code[open].text, open_text);
    let mut depth = 0usize;
    for (offset, token) in code.iter().enumerate().skip(open) {
        if token.text == open_text {
            depth += 1;
        } else if token.text == close_text {
            depth -= 1;
            if depth == 0 {
                return Some(offset);
            }
        }
    }
    None
}

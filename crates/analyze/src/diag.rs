//! Findings and their renderers.
//!
//! A [`Finding`] pins one diagnostic to `file:line:col` with a lint id, a
//! severity, a message and a suggestion.  Two renderers exist: an aligned
//! text report for humans and a deterministic JSON document for the CI
//! artifact (hand-written like every other JSON surface in this workspace —
//! findings sorted by file, line, column, lint id, so two runs over the
//! same tree emit identical bytes).

use std::fmt::Write as _;

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Style/robustness: tolerated unless `--deny all`.
    Warning,
    /// A determinism-contract violation: fails the lint run by default.
    Error,
}

impl Severity {
    /// The stable lower-case label (`warning`, `error`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One diagnostic produced by a lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The lint's stable id (`wall-clock`, `nondet-iteration`, …).
    pub lint: &'static str,
    /// The finding's severity.
    pub severity: Severity,
    /// Workspace-relative path (forward slashes) of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found.
    pub message: String,
    /// How to fix (or legitimately suppress) it.
    pub suggestion: String,
}

/// Sorts findings into the canonical (deterministic) report order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.lint).cmp(&(b.file.as_str(), b.line, b.col, b.lint))
    });
}

/// Renders findings as an aligned human-readable report, one finding per
/// paragraph, with a trailing summary line.
#[must_use]
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for finding in findings {
        let _ = writeln!(
            out,
            "{}: [{}] {} ({}:{}:{})",
            finding.severity.label(),
            finding.lint,
            finding.message,
            finding.file,
            finding.line,
            finding.col,
        );
        let _ = writeln!(out, "    = help: {}", finding.suggestion);
    }
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    let warnings = findings.len() - errors;
    let _ = writeln!(
        out,
        "{} finding(s): {errors} error(s), {warnings} warning(s)",
        findings.len(),
    );
    out
}

/// Renders findings as a deterministic JSON document:
/// `{"findings":[…],"errors":N,"warnings":N}`.
#[must_use]
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (index, finding) in findings.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(
            out,
            "\"lint\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \
             \"message\": {}, \"suggestion\": {}",
            json_string(finding.lint),
            json_string(finding.severity.label()),
            json_string(&finding.file),
            finding.line,
            finding.col,
            json_string(&finding.message),
            json_string(&finding.suggestion),
        );
        out.push('}');
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    let _ = write!(
        out,
        "],\n  \"errors\": {errors},\n  \"warnings\": {}\n}}\n",
        findings.len() - errors,
    );
    out
}

/// Escapes `value` as a JSON string literal.
#[must_use]
pub fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

//! `laec-lint` — the workspace's static-analysis front-end.
//!
//! ```text
//! laec-lint [ROOT] [--json] [--deny all]   lint the workspace source
//! laec-lint --protocols [--caches N] [--json]
//!                                          model-check the coherence tables
//! laec-lint --list                         print the lint catalogue
//! ```
//!
//! Exit code 0 means clean; 1 means findings (any error-severity finding,
//! or any finding at all under `--deny all`) or an unsafe protocol table;
//! 2 means usage error.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use laec_analyze::diag::{json_string, render_json, render_text, Severity};
use laec_analyze::protocols::{check_protocol, ProtocolReport};
use laec_analyze::{lint_workspace, CATALOG};
use laec_mem::ProtocolKind;

const USAGE: &str = "\
laec-lint — static analysis for the LAEC determinism contract

USAGE:
    laec-lint [ROOT] [FLAGS]

FLAGS:
    --json          Machine-readable output (the CI artifact format)
    --deny all      Treat every finding as fatal (exit 1), warnings included
    --protocols     Model-check the MESI/Dragon/MOESI decision tables over
                    2..=N-cache single-line systems instead of linting
    --caches <N>    Largest system size for --protocols (default 4, max 4)
    --list          Print the lint catalogue and exit

Suppressions are comment-based and must be justified:
    // laec-lint: allow(<lint-id>) -- <why this exception is sound>
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

struct Options {
    root: PathBuf,
    json: bool,
    deny_all: bool,
    protocols: bool,
    caches: usize,
    list: bool,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        root: PathBuf::from("."),
        json: false,
        deny_all: false,
        protocols: false,
        caches: 4,
        list: false,
    };
    let mut root_set = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => options.json = true,
            "--deny" => {
                let value = iter.next().ok_or("--deny needs a value (all)")?;
                if value != "all" {
                    return Err(format!("--deny only understands `all`, got `{value}`"));
                }
                options.deny_all = true;
            }
            "--protocols" => options.protocols = true,
            "--caches" => {
                let value = iter.next().ok_or("--caches needs a value")?;
                options.caches = value
                    .parse()
                    .map_err(|_| format!("--caches needs a number, got `{value}`"))?;
                if !(1..=4).contains(&options.caches) {
                    return Err("--caches must be in 1..=4 (the small-model bound)".to_string());
                }
            }
            "--list" => options.list = true,
            "help" | "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') && !root_set => {
                options.root = PathBuf::from(other);
                root_set = true;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(options)
}

fn run(args: &[String]) -> Result<bool, String> {
    let options = parse(args)?;
    if options.list {
        for lint in CATALOG {
            println!(
                "{:<22} {:<8} {}",
                lint.id,
                lint.severity.label(),
                lint.summary
            );
        }
        return Ok(true);
    }
    if options.protocols {
        return Ok(run_protocols(&options));
    }

    let findings = lint_workspace(&options.root)
        .map_err(|error| format!("cannot scan {}: {error}", options.root.display()))?;
    if options.json {
        print!("{}", render_json(&findings));
    } else {
        print!("{}", render_text(&findings));
    }
    let fatal = findings
        .iter()
        .any(|f| options.deny_all || f.severity == Severity::Error);
    Ok(!fatal)
}

fn run_protocols(options: &Options) -> bool {
    let mut reports = Vec::new();
    for kind in ProtocolKind::ALL {
        for caches in 2..=options.caches.max(2) {
            reports.push(check_protocol(kind.table(), caches));
        }
    }
    if options.json {
        print!("{}", render_protocols_json(&reports));
    } else {
        print!("{}", render_protocols_text(&reports));
    }
    reports.iter().all(ProtocolReport::safe)
}

fn render_protocols_text(reports: &[ProtocolReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>10} {:>12} verdict",
        "protocol", "caches", "reachable", "transitions"
    );
    for report in reports {
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>10} {:>12} {}",
            report.protocol,
            report.caches,
            report.reachable_states,
            report.transitions,
            if report.safe() { "safe" } else { "UNSAFE" },
        );
        for violation in &report.violations {
            let _ = writeln!(
                out,
                "    violation: {} in state [{}]",
                violation.invariant,
                violation.state.join(", "),
            );
            let _ = writeln!(out, "        via: {}", violation.trace.join(" -> "));
        }
    }
    let unsafe_count = reports.iter().filter(|r| !r.safe()).count();
    let _ = writeln!(
        out,
        "{} table/size combination(s) checked, {unsafe_count} unsafe",
        reports.len(),
    );
    out
}

fn render_protocols_json(reports: &[ProtocolReport]) -> String {
    let mut out = String::from("{\n  \"protocols\": [");
    for (index, report) in reports.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"protocol\": {}, \"caches\": {}, \"reachable\": {}, \
             \"transitions\": {}, \"safe\": {}, \"violations\": [",
            json_string(&report.protocol),
            report.caches,
            report.reachable_states,
            report.transitions,
            report.safe(),
        );
        for (v_index, violation) in report.violations.iter().enumerate() {
            if v_index > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"invariant\": {}, \"state\": {}, \"trace\": {}}}",
                json_string(&violation.invariant),
                json_array(violation.state.iter().copied()),
                json_array(violation.trace.iter().map(String::as_str)),
            );
        }
        out.push_str("]}");
    }
    let unsafe_count = reports.iter().filter(|r| !r.safe()).count();
    let _ = write!(out, "\n  ],\n  \"unsafe\": {unsafe_count}\n}}\n");
    out
}

fn json_array<'a>(items: impl Iterator<Item = &'a str>) -> String {
    let mut out = String::from("[");
    for (index, item) in items.enumerate() {
        if index > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_string(item));
    }
    out.push(']');
    out
}

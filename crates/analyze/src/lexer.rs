//! A hand-rolled Rust token scanner.
//!
//! The build environment has no crates.io access, so there is no `syn` or
//! `proc-macro2` to lean on; the lints in this crate run on a token stream
//! produced by this scanner instead of a full AST.  The scanner handles the
//! parts of Rust's lexical grammar that matter for *not mis-firing*:
//!
//! * string literals with escapes (a `// comment` inside a string is text,
//!   not a comment),
//! * raw strings `r"…"` / `r#"…"#` (no escape processing, arbitrary `#`
//!   fences) and their byte variants `b"…"` / `br#"…"#`,
//! * raw identifiers `r#match`,
//! * nested block comments `/* /* */ */` (Rust nests them; C does not),
//! * the lifetime-vs-char-literal ambiguity: `'a` is a lifetime, `'a'` is a
//!   char, `'\n'` is a char, `'_` is a lifetime,
//! * line comments — kept in the stream (with their text) because the
//!   suppression syntax lives in them.
//!
//! The scanner never fails: bytes it cannot classify become
//! [`TokenKind::Unknown`] tokens so a lint run cannot crash on an
//! in-progress source file.

/// The classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers, with the `r#`
    /// prefix stripped from [`Token::text`]'s classification purposes kept
    /// verbatim in the text).
    Ident,
    /// A lifetime such as `'a` or `'_` (leading quote included in the text).
    Lifetime,
    /// A character literal such as `'a'` or `'\u{1F600}'`.
    CharLit,
    /// A string literal (cooked or raw, text or byte).
    StringLit,
    /// An integer or float literal, including suffixes.
    Number,
    /// A `//` line comment, including doc comments (`///`, `//!`); the text
    /// contains the full comment without the trailing newline.
    LineComment,
    /// A `/* … */` block comment (possibly nested), including doc variants.
    BlockComment,
    /// One punctuation character (`::` is two `:` tokens).
    Punct,
    /// A byte the scanner could not classify.
    Unknown,
}

impl TokenKind {
    /// `true` for comment tokens (skipped by the significant-token view).
    #[must_use]
    pub fn is_comment(self) -> bool {
        matches!(self, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// One scanned token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    /// The classification.
    pub kind: TokenKind,
    /// The verbatim source text of the token.
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: u32,
}

struct Scanner<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Scanner<'a> {
    fn new(src: &'a str) -> Self {
        Scanner {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, offset: usize) -> Option<u8> {
        self.bytes.get(self.pos + offset).copied()
    }

    /// Advances one byte, maintaining the line/column counters.
    fn bump(&mut self) {
        if self.bytes.get(self.pos) == Some(&b'\n') {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes bytes while `predicate` holds.
    fn eat_while(&mut self, predicate: impl Fn(u8) -> bool) {
        while let Some(byte) = self.peek(0) {
            if predicate(byte) {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Consumes a cooked (escaped) literal body up to an unescaped `quote`.
    fn eat_cooked_until(&mut self, quote: u8) {
        while let Some(byte) = self.peek(0) {
            if byte == b'\\' {
                self.bump();
                if self.peek(0).is_some() {
                    self.bump();
                }
            } else if byte == quote {
                self.bump();
                return;
            } else {
                self.bump();
            }
        }
    }

    /// Consumes a raw-string body opened with `fence` `#` characters,
    /// stopping after `"` followed by that many `#`s.
    fn eat_raw_until(&mut self, fence: usize) {
        while let Some(byte) = self.peek(0) {
            if byte == b'"' {
                let mut matched = true;
                for i in 0..fence {
                    if self.peek(1 + i) != Some(b'#') {
                        matched = false;
                        break;
                    }
                }
                if matched {
                    self.bump_n(1 + fence);
                    return;
                }
            }
            self.bump();
        }
    }

    /// Consumes a (possibly nested) block comment; the leading `/*` is
    /// already consumed.
    fn eat_block_comment(&mut self) {
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => return, // unterminated: tolerate
            }
        }
    }

    /// How many `#` characters follow `r`/`br` and whether a `"` follows
    /// them (i.e. this really is a raw string start).
    fn raw_fence(&self, after: usize) -> Option<usize> {
        let mut fence = 0;
        while self.peek(after + fence) == Some(b'#') {
            fence += 1;
        }
        (self.peek(after + fence) == Some(b'"')).then_some(fence)
    }
}

fn is_ident_start(byte: u8) -> bool {
    byte.is_ascii_alphabetic() || byte == b'_' || byte >= 0x80
}

fn is_ident_continue(byte: u8) -> bool {
    byte.is_ascii_alphanumeric() || byte == b'_' || byte >= 0x80
}

/// Scans `src` into a token stream.  Whitespace is dropped; comments are
/// kept (the suppression syntax lives in line comments).  The scanner is
/// total: unclassifiable bytes come back as [`TokenKind::Unknown`].
#[must_use]
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let mut scanner = Scanner::new(src);
    let mut tokens = Vec::new();
    while let Some(byte) = scanner.peek(0) {
        if byte.is_ascii_whitespace() {
            scanner.bump();
            continue;
        }
        let start = scanner.pos;
        let line = scanner.line;
        let col = scanner.col;
        let kind = scan_one(&mut scanner, byte);
        tokens.push(Token {
            kind,
            text: &scanner.src[start..scanner.pos],
            line,
            col,
        });
    }
    tokens
}

/// Scans exactly one token starting at `byte`; advances the scanner past it.
fn scan_one(scanner: &mut Scanner<'_>, byte: u8) -> TokenKind {
    match byte {
        b'/' if scanner.peek(1) == Some(b'/') => {
            scanner.eat_while(|b| b != b'\n');
            TokenKind::LineComment
        }
        b'/' if scanner.peek(1) == Some(b'*') => {
            scanner.bump_n(2);
            scanner.eat_block_comment();
            TokenKind::BlockComment
        }
        b'"' => {
            scanner.bump();
            scanner.eat_cooked_until(b'"');
            TokenKind::StringLit
        }
        b'\'' => scan_quote(scanner),
        b'r' | b'b' if starts_prefixed_literal(scanner, byte) => scan_prefixed_literal(scanner),
        _ if is_ident_start(byte) => {
            scanner.eat_while(is_ident_continue);
            TokenKind::Ident
        }
        _ if byte.is_ascii_digit() => {
            scan_number(scanner);
            TokenKind::Number
        }
        _ if byte.is_ascii_punctuation() => {
            scanner.bump();
            TokenKind::Punct
        }
        _ => {
            scanner.bump();
            TokenKind::Unknown
        }
    }
}

/// `true` when the `r`/`b` at the cursor opens a raw string, byte string,
/// byte char, or raw identifier rather than a plain identifier.
fn starts_prefixed_literal(scanner: &Scanner<'_>, byte: u8) -> bool {
    match byte {
        // r"…", r#"…"#, r#ident
        b'r' => scanner.raw_fence(1).is_some() || scanner.peek(1) == Some(b'#'),
        // b"…", b'…', br"…", br#"…"#
        b'b' => match scanner.peek(1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => scanner.raw_fence(2).is_some(),
            _ => false,
        },
        _ => false,
    }
}

/// Scans `r`/`b`-prefixed literals (and raw identifiers).
fn scan_prefixed_literal(scanner: &mut Scanner<'_>) -> TokenKind {
    let first = scanner.peek(0);
    if first == Some(b'r') {
        if let Some(fence) = scanner.raw_fence(1) {
            // r"…" / r#"…"#
            scanner.bump_n(1 + fence + 1);
            scanner.eat_raw_until(fence);
            return TokenKind::StringLit;
        }
        // r#ident — a raw identifier.
        scanner.bump_n(2);
        scanner.eat_while(is_ident_continue);
        return TokenKind::Ident;
    }
    // b-prefixed forms.
    match scanner.peek(1) {
        Some(b'"') => {
            scanner.bump_n(2);
            scanner.eat_cooked_until(b'"');
            TokenKind::StringLit
        }
        Some(b'\'') => {
            scanner.bump_n(2);
            scanner.eat_cooked_until(b'\'');
            TokenKind::CharLit
        }
        Some(b'r') => {
            let fence = scanner.raw_fence(2).unwrap_or(0);
            scanner.bump_n(2 + fence + 1);
            scanner.eat_raw_until(fence);
            TokenKind::StringLit
        }
        _ => {
            scanner.bump();
            TokenKind::Unknown
        }
    }
}

/// Disambiguates `'` between a lifetime (`'a`, `'_`, `'static`) and a char
/// literal (`'a'`, `'\n'`, `'\u{1F600}'`).
fn scan_quote(scanner: &mut Scanner<'_>) -> TokenKind {
    match scanner.peek(1) {
        // An escape can only open a char literal.
        Some(b'\\') => {
            scanner.bump();
            scanner.eat_cooked_until(b'\'');
            TokenKind::CharLit
        }
        Some(next) if is_ident_start(next) => {
            // Scan the identifier run after the quote; a closing quote
            // directly after it makes this a char literal ('a'), otherwise
            // it is a lifetime ('a).  Multi-byte chars ('é') ride the same
            // path because is_ident_start admits non-ASCII bytes.
            let mut len = 1;
            while scanner.peek(1 + len).is_some_and(is_ident_continue) {
                len += 1;
            }
            if scanner.peek(1 + len) == Some(b'\'') {
                scanner.bump_n(1 + len + 1);
                TokenKind::CharLit
            } else {
                scanner.bump_n(1 + len);
                TokenKind::Lifetime
            }
        }
        // Any other single char: '+', ' ', '0' … must be a char literal.
        Some(_) => {
            scanner.bump();
            scanner.eat_cooked_until(b'\'');
            TokenKind::CharLit
        }
        None => {
            scanner.bump();
            TokenKind::Unknown
        }
    }
}

/// Scans a numeric literal: decimal/hex/octal/binary integers, floats with
/// exponents, `_` separators and type suffixes.  Careful with `0..10`: the
/// first `.` of a range operator is not part of the number.
fn scan_number(scanner: &mut Scanner<'_>) {
    if scanner.peek(0) == Some(b'0')
        && matches!(
            scanner.peek(1),
            Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B')
        )
    {
        scanner.bump_n(2);
        scanner.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        return;
    }
    scanner.eat_while(|b| b.is_ascii_digit() || b == b'_');
    // Fractional part — but not `..` (range) and not `0.method()`.
    if scanner.peek(0) == Some(b'.') && scanner.peek(1).is_some_and(|b| b.is_ascii_digit()) {
        scanner.bump();
        scanner.eat_while(|b| b.is_ascii_digit() || b == b'_');
    }
    // Exponent.
    if matches!(scanner.peek(0), Some(b'e' | b'E')) {
        let mut offset = 1;
        if matches!(scanner.peek(1), Some(b'+' | b'-')) {
            offset = 2;
        }
        if scanner.peek(offset).is_some_and(|b| b.is_ascii_digit()) {
            scanner.bump_n(offset);
            scanner.eat_while(|b| b.is_ascii_digit() || b == b'_');
        }
    }
    // Type suffix (u32, f64, usize, …).
    scanner.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
}

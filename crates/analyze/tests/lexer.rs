//! Edge-case tests for the hand-rolled lexer: the constructs that break
//! naive regex-based scanners must all tokenize correctly, because every
//! lint (and every suppression) depends on the token stream being right.

use laec_analyze::lexer::{lex, TokenKind};

fn kinds(source: &str) -> Vec<(TokenKind, &str)> {
    lex(source).into_iter().map(|t| (t.kind, t.text)).collect()
}

#[test]
fn raw_strings_swallow_quotes_and_escapes() {
    let tokens = kinds(r####"let s = r#"a "quoted" \n not-an-escape"#;"####);
    let strings: Vec<&str> = tokens
        .iter()
        .filter(|(k, _)| *k == TokenKind::StringLit)
        .map(|(_, text)| *text)
        .collect();
    assert_eq!(strings, [r###"r#"a "quoted" \n not-an-escape"#"###]);
}

#[test]
fn raw_string_fence_depth_is_respected() {
    // The inner `"#` must not terminate an `r##"…"##` literal.
    let source = r#####"let s = r##"contains "# inside"##; let x = 1;"#####;
    let tokens = kinds(source);
    assert!(tokens
        .iter()
        .any(|(k, text)| *k == TokenKind::StringLit && text.contains("contains")));
    assert!(tokens.iter().any(|(_, text)| *text == "x"));
}

#[test]
fn byte_and_raw_byte_strings_lex_as_strings() {
    let tokens = kinds(r###"let a = b"bytes\n"; let b = br#"raw "bytes""#;"###);
    let strings = tokens
        .iter()
        .filter(|(k, _)| *k == TokenKind::StringLit)
        .count();
    assert_eq!(strings, 2);
}

#[test]
fn nested_block_comments_close_at_matching_depth() {
    let tokens = kinds("before /* outer /* inner */ still-comment */ after");
    let comments: Vec<&str> = tokens
        .iter()
        .filter(|(k, _)| *k == TokenKind::BlockComment)
        .map(|(_, text)| *text)
        .collect();
    assert_eq!(comments, ["/* outer /* inner */ still-comment */"]);
    let idents: Vec<&str> = tokens
        .iter()
        .filter(|(k, _)| *k == TokenKind::Ident)
        .map(|(_, text)| *text)
        .collect();
    assert_eq!(idents, ["before", "after"]);
}

#[test]
fn lifetimes_and_char_literals_disambiguate() {
    let tokens = kinds("fn f<'a>(x: &'a str) -> char { 'a' }");
    let lifetimes = tokens
        .iter()
        .filter(|(k, _)| *k == TokenKind::Lifetime)
        .count();
    let chars: Vec<&str> = tokens
        .iter()
        .filter(|(k, _)| *k == TokenKind::CharLit)
        .map(|(_, text)| *text)
        .collect();
    assert_eq!(lifetimes, 2);
    assert_eq!(chars, ["'a'"]);
}

#[test]
fn escaped_char_literals_are_single_tokens() {
    let tokens = kinds(r"let q = '\''; let n = '\n'; let u = '\u{1F600}';");
    let chars: Vec<&str> = tokens
        .iter()
        .filter(|(k, _)| *k == TokenKind::CharLit)
        .map(|(_, text)| *text)
        .collect();
    assert_eq!(chars, [r"'\''", r"'\n'", r"'\u{1F600}'"]);
}

#[test]
fn labels_lex_as_lifetimes_not_chars() {
    let tokens = kinds("'outer: loop { break 'outer; }");
    assert_eq!(
        tokens
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .count(),
        2
    );
    assert_eq!(
        tokens
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .count(),
        0
    );
}

#[test]
fn raw_identifiers_lex_as_idents() {
    let tokens = kinds("let r#fn = 1; let plain = r#fn;");
    assert!(tokens
        .iter()
        .any(|(k, text)| *k == TokenKind::Ident && *text == "r#fn"));
}

#[test]
fn strings_with_embedded_comment_openers_stay_strings() {
    let tokens = kinds(r#"let s = "not /* a comment"; let t = 2;"#);
    assert_eq!(
        tokens
            .iter()
            .filter(|(k, _)| *k == TokenKind::BlockComment)
            .count(),
        0
    );
    assert!(tokens.iter().any(|(_, text)| *text == "t"));
}

#[test]
fn line_and_column_positions_are_one_based_and_accurate() {
    let tokens = lex("let a = 1;\n  let b = 2;");
    let b = tokens
        .iter()
        .find(|t| t.text == "b")
        .expect("token b exists");
    assert_eq!((b.line, b.col), (2, 7));
}

#[test]
fn numbers_with_suffixes_ranges_and_exponents() {
    let tokens = kinds("for i in 0..10u32 { let f = 1.5e-3f64; let h = 0xFF; }");
    let numbers: Vec<&str> = tokens
        .iter()
        .filter(|(k, _)| *k == TokenKind::Number)
        .map(|(_, text)| *text)
        .collect();
    assert_eq!(numbers, ["0", "10u32", "1.5e-3f64", "0xFF"]);
}

//! Model-checker tests: the three shipped decision tables must be safe at
//! every system size up to the small-model bound, and a deliberately
//! broken table must be caught with a shortest counterexample trace.

use laec_analyze::check_protocol;
use laec_mem::{CoherenceProtocol, LineState, LocalWriteAction, ProtocolKind};

#[test]
fn all_shipped_tables_are_safe_up_to_four_caches() {
    for kind in ProtocolKind::ALL {
        for caches in 2..=4 {
            let report = check_protocol(kind.table(), caches);
            assert!(
                report.safe(),
                "{} unsafe at {caches} caches: {:#?}",
                report.protocol,
                report.violations
            );
            assert!(report.reachable_states > 1);
            assert!(report.transitions > 0);
        }
    }
}

#[test]
fn state_space_grows_with_system_size() {
    let small = check_protocol(ProtocolKind::Mesi.table(), 2);
    let large = check_protocol(ProtocolKind::Mesi.table(), 4);
    assert!(large.reachable_states > small.reachable_states);
}

/// An MSI-like table with the classic silent-store bug: a write hitting a
/// `Shared` copy skips the invalidation broadcast, so two caches can end
/// up with one `M` and one stale-but-valid `S` copy of the same line.
#[derive(Debug)]
struct SilentSharedWrite;

impl CoherenceProtocol for SilentSharedWrite {
    fn name(&self) -> &'static str {
        "silent-shared-write"
    }

    fn state_bits(&self) -> u32 {
        2
    }

    fn read_fill_state(&self, _sharers: bool) -> LineState {
        LineState::Shared
    }

    fn snooped_read_next(&self, _state: LineState) -> LineState {
        LineState::Shared
    }

    fn local_write_action(&self, _state: LineState) -> LocalWriteAction {
        LocalWriteAction::Silent // the bug: Shared should Invalidate
    }

    fn supplies_through_l2(&self) -> bool {
        true
    }

    fn uses_update_bus(&self) -> bool {
        false
    }
}

#[test]
fn silent_shared_write_bug_is_caught_with_a_shortest_trace() {
    let report = check_protocol(&SilentSharedWrite, 2);
    assert!(!report.safe());
    let violation = &report.violations[0];
    assert!(
        violation.invariant.contains("M copy coexists"),
        "unexpected invariant: {}",
        violation.invariant
    );
    // Shortest reproduction: both caches read (S, S), then one writes.
    assert_eq!(violation.trace.len(), 3, "trace: {:?}", violation.trace);
    assert!(violation.state.contains(&"M"));
    assert!(violation.state.contains(&"S"));
}

/// A table that under-declares its metadata width: it reaches `M`
/// (encoding 0b011) while claiming a single state bit.
#[derive(Debug)]
struct UnderDeclaredBits;

impl CoherenceProtocol for UnderDeclaredBits {
    fn name(&self) -> &'static str {
        "under-declared-bits"
    }

    fn state_bits(&self) -> u32 {
        1
    }

    fn read_fill_state(&self, _sharers: bool) -> LineState {
        LineState::Shared
    }

    fn snooped_read_next(&self, _state: LineState) -> LineState {
        LineState::Shared
    }

    fn local_write_action(&self, state: LineState) -> LocalWriteAction {
        match state {
            LineState::Shared => LocalWriteAction::Invalidate,
            _ => LocalWriteAction::Silent,
        }
    }

    fn supplies_through_l2(&self) -> bool {
        true
    }

    fn uses_update_bus(&self) -> bool {
        false
    }
}

#[test]
fn state_bit_honesty_is_checked() {
    let report = check_protocol(&UnderDeclaredBits, 2);
    assert!(!report.safe());
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant.contains("state bit")),
        "{:#?}",
        report.violations
    );
}

#[test]
fn traces_replay_to_the_violating_state() {
    // Every violation trace must be non-empty (the all-Invalid start is
    // trivially safe) and name a concrete actor and op.
    let report = check_protocol(&SilentSharedWrite, 3);
    assert!(!report.safe());
    for violation in &report.violations {
        assert!(!violation.trace.is_empty());
        for step in &violation.trace {
            assert!(
                step.starts_with("cache") && step.contains(' '),
                "malformed trace step {step}"
            );
        }
    }
}

//! The self-hosting gate: this repository's own source must lint clean
//! (every finding fixed or carrying a justified suppression), and the
//! shipped coherence tables must model-check safe.  This is the same bar
//! CI enforces with `laec-lint --deny all` and `--protocols`; running it
//! under tier-1 means a violating change cannot even pass `cargo test`.

use std::path::PathBuf;

use laec_analyze::{check_protocol, lint_workspace};
use laec_mem::ProtocolKind;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn the_workspace_lints_clean() {
    let findings = lint_workspace(&repo_root()).expect("workspace scan succeeds");
    assert!(
        findings.is_empty(),
        "the workspace must lint clean under `laec-lint --deny all`; fix the \
         finding or add a justified suppression:\n{}",
        laec_analyze::render_text(&findings)
    );
}

#[test]
fn the_shipped_protocol_tables_model_check_safe() {
    for kind in ProtocolKind::ALL {
        for caches in 2..=4 {
            let report = check_protocol(kind.table(), caches);
            assert!(
                report.safe(),
                "{} at {caches} caches: {:#?}",
                report.protocol,
                report.violations
            );
        }
    }
}

//! Fires / stays-quiet fixture pairs for every lint, plus the suppression
//! meta-lints.  Each fixture lives under `tests/fixtures/` so the exact
//! source the lint saw is reviewable next to this test.

use laec_analyze::lints::lint_file;

/// Lints a fixture as if it were library source (a path where every lint
/// is enforced).
fn lint_fixture(source: &str) -> Vec<laec_analyze::Finding> {
    lint_file("crates/fixture/src/lib.rs", source)
}

fn ids(findings: &[laec_analyze::Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.lint).collect()
}

#[test]
fn nondet_iteration_fires() {
    let findings = lint_fixture(include_str!("fixtures/nondet_iteration_fires.rs"));
    assert_eq!(
        ids(&findings),
        ["nondet-iteration", "nondet-iteration", "nondet-iteration"],
        "{findings:#?}"
    );
    // `.values()`, `.iter()` and `for … in &map` are all caught.
    assert!(findings.iter().any(|f| f.message.contains("map.values()")));
    assert!(findings.iter().any(|f| f.message.contains("seen.iter()")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("for … in table")));
}

#[test]
fn nondet_iteration_stays_quiet() {
    let findings = lint_fixture(include_str!("fixtures/nondet_iteration_quiet.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn wall_clock_fires() {
    let findings = lint_fixture(include_str!("fixtures/wall_clock_fires.rs"));
    assert!(!findings.is_empty());
    assert!(ids(&findings).iter().all(|id| *id == "wall-clock"));
    assert!(findings.iter().any(|f| f.message.contains("Instant::now")));
    assert!(findings.iter().any(|f| f.message.contains("SystemTime")));
}

#[test]
fn wall_clock_stays_quiet() {
    let findings = lint_fixture(include_str!("fixtures/wall_clock_quiet.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn wall_clock_allowlists_the_sanctioned_module() {
    let source = include_str!("fixtures/wall_clock_fires.rs");
    assert!(lint_file("crates/obs/src/wallclock.rs", source).is_empty());
    assert!(lint_file("crates/bench/src/lib.rs", source).is_empty());
}

#[test]
fn stdout_bytes_fires() {
    let findings = lint_fixture(include_str!("fixtures/stdout_bytes_fires.rs"));
    assert_eq!(ids(&findings), ["stdout-bytes", "stdout-bytes"]);
}

#[test]
fn stdout_bytes_stays_quiet() {
    let findings = lint_fixture(include_str!("fixtures/stdout_bytes_quiet.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn stdout_bytes_allowlists_the_cli() {
    let source = include_str!("fixtures/stdout_bytes_fires.rs");
    assert!(lint_file("crates/cli/src/main.rs", source).is_empty());
}

#[test]
fn panic_in_library_fires() {
    let findings = lint_fixture(include_str!("fixtures/panic_in_library_fires.rs"));
    assert_eq!(
        ids(&findings),
        ["panic-in-library", "panic-in-library", "panic-in-library"]
    );
    assert!(findings
        .iter()
        .all(|f| f.severity == laec_analyze::Severity::Warning));
}

#[test]
fn panic_in_library_stays_quiet_including_test_code() {
    let findings = lint_fixture(include_str!("fixtures/panic_in_library_quiet.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn ambient_parallelism_fires() {
    let findings = lint_fixture(include_str!("fixtures/ambient_parallelism_fires.rs"));
    assert_eq!(
        ids(&findings),
        ["ambient-parallelism", "ambient-parallelism"]
    );
    assert!(findings
        .iter()
        .any(|f| f.message.contains("available_parallelism")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("thread::current")));
}

#[test]
fn ambient_parallelism_stays_quiet() {
    let findings = lint_fixture(include_str!("fixtures/ambient_parallelism_quiet.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn env_read_fires() {
    let findings = lint_fixture(include_str!("fixtures/env_read_fires.rs"));
    assert_eq!(ids(&findings), ["env-read", "env-read"]);
}

#[test]
fn env_read_stays_quiet() {
    let findings = lint_fixture(include_str!("fixtures/env_read_quiet.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn env_read_allowlists_the_invocation_layer() {
    let source = include_str!("fixtures/env_read_fires.rs");
    assert!(lint_file("crates/cli/src/main.rs", source).is_empty());
    assert!(lint_file("stubs/criterion/src/lib.rs", source).is_empty());
}

#[test]
fn justified_suppressions_silence_their_findings() {
    let findings = lint_fixture(include_str!("fixtures/suppression_justified.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn bare_suppression_is_a_finding_and_does_not_silence() {
    let findings = lint_fixture(include_str!("fixtures/suppression_bare.rs"));
    let mut found = ids(&findings);
    found.sort_unstable();
    assert_eq!(found, ["bare-suppression", "panic-in-library"]);
}

#[test]
fn unused_suppression_is_a_finding() {
    let findings = lint_fixture(include_str!("fixtures/suppression_unused.rs"));
    assert_eq!(ids(&findings), ["unused-suppression"]);
}

#[test]
fn findings_render_deterministically() {
    let findings = lint_fixture(include_str!("fixtures/panic_in_library_fires.rs"));
    let text = laec_analyze::diag::render_text(&findings);
    assert!(text.contains("[panic-in-library]"));
    assert!(text.ends_with("3 finding(s): 0 error(s), 3 warning(s)\n"));
    let json = laec_analyze::diag::render_json(&findings);
    assert!(json.contains("\"lint\": \"panic-in-library\""));
    assert!(json.contains("\"warnings\": 3"));
}

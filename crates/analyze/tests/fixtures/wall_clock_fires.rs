//! Fixture: raw clock reads in library code must fire `wall-clock`.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn epoch_guess() -> std::time::SystemTime {
    std::time::SystemTime::UNIX_EPOCH
}

//! Fixture: a justified allow(...) whose lint no longer fires on its
//! target line is dead and must be removed.
pub fn first(values: &[u32]) -> Option<u32> {
    // laec-lint: allow(panic-in-library) -- stale: the unwrap was removed
    values.first().copied()
}

//! Fixture: code that is handed durations (instead of reading the clock)
//! stays quiet.
pub fn total_ms(elapsed_ns: u64) -> f64 {
    elapsed_ns as f64 / 1.0e6
}

//! Fixture: querying the host's width or scheduler identity must fire
//! `ambient-parallelism`.
use std::thread;

pub fn width() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

pub fn who_am_i() -> String {
    format!("{:?}", thread::current().id())
}

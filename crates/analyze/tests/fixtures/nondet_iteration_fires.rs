//! Fixture: iterating HashMap/HashSet bindings must fire `nondet-iteration`.
use std::collections::{HashMap, HashSet};

pub fn checksum(map: &HashMap<String, u64>) -> u64 {
    let mut out = 0;
    for value in map.values() {
        out ^= value;
    }
    out
}

pub fn labels(seen: &HashSet<String>) -> Vec<String> {
    seen.iter().cloned().collect()
}

pub fn render(table: HashMap<u32, u32>) -> String {
    let mut out = String::new();
    for (key, value) in &table {
        out.push_str(&format!("{key}={value}\n"));
    }
    out
}

//! Fixture: configuration threaded through parameters stays quiet.
pub fn cache_dir(configured: Option<&str>) -> Option<&str> {
    configured
}

//! Fixture: ambient environment reads must fire `env-read`.
use std::env;

pub fn cache_dir() -> Option<String> {
    env::var("LAEC_CACHE_DIR").ok()
}

pub fn all_of_it() -> usize {
    env::vars().count()
}

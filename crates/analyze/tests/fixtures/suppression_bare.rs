//! Fixture: an allow(...) without `-- justification` is itself a finding,
//! and does not silence the underlying one.
pub fn first(values: &[u32]) -> u32 {
    // laec-lint: allow(panic-in-library)
    *values.first().unwrap()
}

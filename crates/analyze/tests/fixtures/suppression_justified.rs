//! Fixture: a justified suppression silences its finding — trailing and
//! standalone forms both resolve to the right line.
pub fn first(values: &[u32]) -> u32 {
    *values.first().unwrap() // laec-lint: allow(panic-in-library) -- caller guarantees non-empty
}

pub fn second(values: &[u32]) -> u32 {
    // laec-lint: allow(panic-in-library) -- caller guarantees two elements
    *values.get(1).unwrap()
}

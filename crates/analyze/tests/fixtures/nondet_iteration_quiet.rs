//! Fixture: ordered collections and non-iterating hash usage stay quiet.
use std::collections::{BTreeMap, HashMap};

pub fn checksum(map: &BTreeMap<String, u64>) -> u64 {
    let mut out = 0;
    for value in map.values() {
        out ^= value;
    }
    out
}

pub fn lookup(index: &HashMap<String, u64>, key: &str) -> Option<u64> {
    // Point lookups are order-independent: only iteration is flagged.
    index.get(key).copied()
}

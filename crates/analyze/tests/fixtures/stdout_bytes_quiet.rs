//! Fixture: the render-to-String idiom and stderr stay quiet.
pub fn render(total: u64) -> String {
    format!("campaign finished: {total} jobs\n")
}

pub fn warn(total: u64) {
    eprintln!("campaign finished: {total} jobs");
}

//! Fixture: aborts in library code must fire `panic-in-library`.
pub fn first(values: &[u32]) -> u32 {
    *values.first().unwrap()
}

pub fn parse(text: &str) -> u32 {
    text.parse().expect("numeric input")
}

pub fn forbid(flag: bool) {
    if flag {
        panic!("flag must be false");
    }
}

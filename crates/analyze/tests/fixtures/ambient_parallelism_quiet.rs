//! Fixture: taking the width as an explicit parameter stays quiet.
pub fn schedule(jobs: usize, threads: usize) -> usize {
    jobs.div_ceil(threads.max(1))
}

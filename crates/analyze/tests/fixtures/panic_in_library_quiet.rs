//! Fixture: propagated errors — and panics confined to test code — stay
//! quiet.
pub fn first(values: &[u32]) -> Option<u32> {
    values.first().copied()
}

pub fn parse(text: &str) -> Result<u32, std::num::ParseIntError> {
    text.parse()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let values = [1u32];
        assert_eq!(*values.first().unwrap(), 1);
        let parsed: u32 = "7".parse().expect("numeric");
        assert_eq!(parsed, 7);
    }
}

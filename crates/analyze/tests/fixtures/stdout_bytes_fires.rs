//! Fixture: stdout writes in library code must fire `stdout-bytes`.
pub fn announce(total: u64) {
    println!("campaign finished: {total} jobs");
    print!("done");
}

//! The unified campaign API's end-to-end guarantees:
//!
//! 1. **Byte-identical reports across the redesign** — for each of the four
//!    execution modes, the legacy entry point (now a deprecated shim) and
//!    `Campaign::run` on the same spec serialize to identical JSON.
//! 2. **Spec serialization** — the committed `specs/ci_smoke.json` golden
//!    fixture parses to exactly the spec the builder assembles, its run
//!    byte-compares to the programmatically built equivalent, and every
//!    `ExecutionMode` round-trips `to_json` → `from_json` → `==`.
//! 3. **Typed errors** — representative `SpecError` cases assert by
//!    variant, never by error-string match.

use std::path::PathBuf;

use laec::core::sampling::{Sampler, SamplingPlan};
use laec::prelude::*;

const GOLDEN: &str = include_str!("../specs/ci_smoke.json");

/// The flag set CI pairs with the golden fixture
/// (`campaign --smoke --workloads vector_sum,fir_filter --schemes
/// no-ecc,laec --fault-seeds 1,2 --fault-interval 200`).
fn golden_equivalent() -> CampaignSpec {
    CampaignBuilder::smoke()
        .named_workloads(["vector_sum", "fir_filter"])
        .schemes([EccScheme::NoEcc, EccScheme::Laec])
        .fault_seeds([1, 2])
        .fault_interval(200)
        .build()
        .expect("well-formed spec")
}

#[test]
fn golden_fixture_parses_to_the_programmatically_built_spec() {
    let from_file = CampaignSpec::from_json(GOLDEN).expect("committed fixture parses");
    let built = golden_equivalent();
    assert_eq!(from_file, built, "fixture and builder must agree");
    // And serialization is byte-stable: re-dumping the parsed spec
    // reproduces the committed document exactly (modulo the trailing
    // newline the CLI's println appends).
    assert_eq!(format!("{}\n", built.to_json()), GOLDEN);
}

#[test]
fn golden_fixture_run_byte_compares_to_the_built_equivalent() {
    let from_file = Campaign::new(
        CampaignSpec::from_json(GOLDEN)
            .expect("fixture parses")
            .validate()
            .expect("fixture validates"),
    )
    .run(2);
    let built = Campaign::new(golden_equivalent().validate().expect("valid")).run(2);
    assert_eq!(from_file.to_json(), built.to_json());
}

/// One spec per execution mode, each with every mode-specific knob set to
/// a non-default value, so the round-trip exercises the full wire format.
fn specimen_modes() -> Vec<ExecutionMode> {
    let mut plan = SamplingPlan::new(48);
    plan.min_samples = 12;
    plan.batch = 6;
    plan.confidence = 0.99;
    plan.max_rel_error = 0.125;
    vec![
        ExecutionMode::Full,
        ExecutionMode::TraceBacked { cache_dir: None },
        ExecutionMode::TraceBacked {
            cache_dir: Some(PathBuf::from("/tmp/laec-traces")),
        },
        ExecutionMode::Sampled {
            plan,
            execution: SampleExecution::FullSim,
        },
        ExecutionMode::Sampled {
            plan,
            execution: SampleExecution::TraceBacked { cache_dir: None },
        },
        ExecutionMode::Sampled {
            plan,
            execution: SampleExecution::TraceBacked {
                cache_dir: Some(PathBuf::from("/tmp/laec-traces")),
            },
        },
        ExecutionMode::Smp,
    ]
}

#[test]
fn every_execution_mode_round_trips_through_json() {
    for mode in specimen_modes() {
        let mut spec = golden_equivalent();
        if matches!(mode, ExecutionMode::Sampled { .. }) {
            spec.fault_seeds.clear();
        }
        spec.mode = mode;
        let json = spec.to_json();
        let parsed = CampaignSpec::from_json(&json)
            .unwrap_or_else(|e| panic!("round-trip parse failed for {json}: {e}"));
        assert_eq!(parsed, spec, "round trip must be the identity\n{json}");
    }
}

#[test]
fn spec_errors_assert_by_variant_not_by_message() {
    // Unknown workload: typed, not a panic and not a CLI string.
    assert!(matches!(
        CampaignBuilder::smoke()
            .named_workloads(["vectorsum"])
            .validate(),
        Err(SpecError::UnknownWorkload(name)) if name == "vectorsum"
    ));
    // Mode × platform incompatibility, straight from the engine caps.
    assert!(matches!(
        CampaignBuilder::smoke()
            .platforms([PlatformVariant::smp(4)])
            .sampled(16)
            .validate(),
        Err(SpecError::ModeIncompatiblePlatform { mode: "sampled", platform }) if platform == "smp4"
    ));
    // Sampling knob without sampling mode.
    assert!(matches!(
        CampaignBuilder::smoke().confidence(0.99).validate(),
        Err(SpecError::SamplingKnobWithoutSampling("confidence"))
    ));
    // Fixed fault seeds under sampled execution.
    assert!(matches!(
        CampaignBuilder::smoke()
            .fault_seeds([1])
            .sampled(16)
            .validate(),
        Err(SpecError::FaultSeedsWithSampling)
    ));
    // A version this build does not read.
    let future = GOLDEN.replace("\"version\": 2", "\"version\": 99");
    assert!(matches!(
        CampaignSpec::from_json(&future),
        Err(SpecError::UnsupportedVersion(99))
    ));
    // A typo'd field is caught, not silently ignored.
    let typod = GOLDEN.replace("\"fault_interval\"", "\"fault_intreval\"");
    assert!(matches!(
        CampaignSpec::from_json(&typod),
        Err(SpecError::UnknownField(field)) if field == "fault_intreval"
    ));
}

// ---------------------------------------------------------------------------
// Byte-identity: the deprecated shims vs `Campaign::run`, all four modes
// ---------------------------------------------------------------------------

fn shim_grid() -> laec::core::campaign::CampaignSpec {
    golden_equivalent().grid()
}

fn run_new(mode: ExecutionMode) -> CampaignOutcome {
    let mut spec = golden_equivalent();
    if matches!(mode, ExecutionMode::Sampled { .. }) {
        spec.fault_seeds.clear();
    }
    spec.mode = mode;
    Campaign::new(spec.validate().expect("valid spec")).run(2)
}

#[test]
fn full_mode_matches_the_run_campaign_shim_byte_for_byte() {
    #[allow(deprecated)]
    let old = laec::core::run_campaign(&shim_grid(), 2);
    let new = run_new(ExecutionMode::Full);
    assert_eq!(new.to_json(), old.to_json());
}

#[test]
fn trace_backed_mode_matches_the_run_campaign_trace_backed_shim_byte_for_byte() {
    #[allow(deprecated)]
    let old = laec::core::run_campaign_trace_backed(&shim_grid(), 2, None);
    let new = run_new(ExecutionMode::TraceBacked { cache_dir: None });
    assert_eq!(new.to_json(), old.report.to_json());
    assert_eq!(new.trace_stats(), Some(&old.stats));
}

#[test]
fn sampled_mode_matches_the_run_campaign_sampled_shim_byte_for_byte() {
    let mut plan = SamplingPlan::new(24);
    plan.min_samples = 8;
    plan.batch = 8;
    let mut grid = shim_grid();
    grid.fault_seeds.clear();
    #[allow(deprecated)]
    let old = laec::core::run_campaign_sampled(&grid, &plan, 2, &SampleExecution::FullSim);
    let new = run_new(ExecutionMode::Sampled {
        plan,
        execution: SampleExecution::FullSim,
    });
    assert_eq!(new.to_json(), old.to_json());
}

#[test]
fn smp_mode_matches_the_run_campaign_smp_shim_byte_for_byte() {
    #[allow(deprecated)]
    let old = laec::core::run_campaign_smp(&shim_grid(), 2);
    let new = run_new(ExecutionMode::Smp);
    assert_eq!(new.to_json(), old.to_json());
}

/// The sharded path the CLI drives (`Sampler` directly, for
/// checkpoint/resume) stays byte-identical to the one-shot dispatch.
#[test]
fn manual_sampler_drive_matches_campaign_run() {
    let mut plan = SamplingPlan::new(24);
    plan.min_samples = 8;
    plan.batch = 8;
    let mut grid = shim_grid();
    grid.fault_seeds.clear();
    let mut sampler = Sampler::new(&grid, &plan, &SampleExecution::FullSim, 2);
    assert!(sampler.run_rounds(2, None));
    let manual = sampler.report();
    let dispatched = run_new(ExecutionMode::Sampled {
        plan,
        execution: SampleExecution::FullSim,
    });
    assert_eq!(dispatched.to_json(), manual.to_json());
}

//! Integration tests for the stratified Monte-Carlo campaign sampler:
//! statistical soundness (the sampled confidence interval brackets the
//! exhaustive grid's estimate), determinism across worker counts, and
//! checkpoint/kill/resume byte-identity.

use laec::core::campaign::{CampaignSpec, WorkloadSet};
use laec::core::sampling::{
    SampleExecution, SampledReport, Sampler, SamplerCheckpoint, SamplingPlan,
};
use laec::pipeline::EccScheme;

mod common;
use common::{run_campaign, run_campaign_sampled};

/// A grid small enough to sample exhaustively in-test but harsh enough
/// (dense upsets on a tiny kernel) that failure rates are non-trivial.
fn test_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::smoke();
    spec.workloads = WorkloadSet::Named(vec!["vector_sum".into(), "fir_filter".into()]);
    spec.schemes = vec![EccScheme::NoEcc, EccScheme::Laec];
    spec.fault_interval = 1_000;
    spec
}

fn test_plan() -> SamplingPlan {
    let mut plan = SamplingPlan::new(96);
    plan.min_samples = 16;
    plan.batch = 16;
    plan
}

/// The same run-failure classification the sampler applies, computed from
/// an exhaustive grid report: a faulty cell fails when it lost dirty data
/// or its final architectural state diverged from the fault-free cell of
/// its stratum.
fn exhaustive_failure_rate(
    report: &laec::core::campaign::CampaignReport,
    workload: &str,
    scheme: &str,
) -> f64 {
    let reference = report
        .cells
        .iter()
        .find(|c| c.workload == workload && c.scheme == scheme && c.fault_seed.is_none())
        .expect("fault-free reference cell");
    let faulty: Vec<_> = report
        .cells
        .iter()
        .filter(|c| c.workload == workload && c.scheme == scheme && c.fault_seed.is_some())
        .collect();
    assert!(!faulty.is_empty(), "grid has a fault axis");
    let failures = faulty
        .iter()
        .filter(|c| {
            c.unrecoverable_errors > 0
                || c.registers_fingerprint != reference.registers_fingerprint
                || c.memory_checksum != reference.memory_checksum
        })
        .count();
    failures as f64 / faulty.len() as f64
}

/// The sampled failure-rate interval brackets the exhaustive 16-seed
/// grid's point estimate, stratum by stratum — the sampler estimates the
/// same quantity the grid enumerates.
#[test]
fn sampled_interval_brackets_the_exhaustive_grid_estimate() {
    let mut exhaustive_spec = test_spec();
    exhaustive_spec.fault_seeds = (1..=16).collect();
    let exhaustive = run_campaign(&exhaustive_spec, 4);

    let sampled = run_campaign_sampled(&test_spec(), &test_plan(), 4, &SampleExecution::FullSim);
    assert_eq!(
        sampled.strata.len(),
        4,
        "2 workloads x 1 platform x 2 schemes"
    );
    for stratum in &sampled.strata {
        let grid_rate = exhaustive_failure_rate(&exhaustive, &stratum.workload, &stratum.scheme);
        assert!(
            stratum.ci_low <= grid_rate + 1e-12 && grid_rate <= stratum.ci_high + 1e-12,
            "{} / {}: exhaustive rate {grid_rate} outside sampled CI [{}, {}] \
             ({} failures / {} samples)",
            stratum.workload,
            stratum.scheme,
            stratum.ci_low,
            stratum.ci_high,
            stratum.failures,
            stratum.samples,
        );
        assert!(stratum.samples >= test_plan().min_samples);
        // 1e-12 absorbs float rounding at the p̂ ∈ {0, 1} extremes, where
        // the Wilson bounds land within one ulp of the point estimate.
        assert!(
            stratum.ci_low <= stratum.failure_rate + 1e-12
                && stratum.failure_rate <= stratum.ci_high + 1e-12
        );
    }
}

/// Byte-identical reports for any worker count: the round-based scheduler
/// folds outcomes in sample-index order regardless of which thread ran
/// which job.
#[test]
fn sampled_report_is_byte_identical_across_thread_counts() {
    let spec = test_spec();
    let plan = test_plan();
    let serial = run_campaign_sampled(&spec, &plan, 1, &SampleExecution::FullSim);
    for threads in [2, 8] {
        let parallel = run_campaign_sampled(&spec, &plan, threads, &SampleExecution::FullSim);
        assert_eq!(
            parallel, serial,
            "{threads}-thread report diverged structurally"
        );
        assert_eq!(
            parallel.to_json(),
            serial.to_json(),
            "{threads}-thread JSON not byte-identical"
        );
    }
}

/// Trace-backed sampling (replay per sample, full-sim fallback on
/// divergence) produces the identical report.
#[test]
fn trace_backed_sampling_matches_full_simulation_byte_for_byte() {
    let spec = test_spec();
    let plan = test_plan();
    let full = run_campaign_sampled(&spec, &plan, 2, &SampleExecution::FullSim);
    let traced = run_campaign_sampled(
        &spec,
        &plan,
        2,
        &SampleExecution::TraceBacked { cache_dir: None },
    );
    assert_eq!(traced.to_json(), full.to_json());
}

/// Kill/resume round-trip: interrupt the campaign after every single
/// round, serialize the checkpoint through its binary container, restore
/// into a fresh sampler (different thread count, even), and the final
/// report byte-compares against an uninterrupted run.
#[test]
fn checkpoint_kill_resume_reproduces_the_uninterrupted_report() {
    let spec = test_spec();
    let plan = test_plan();
    let uninterrupted = run_campaign_sampled(&spec, &plan, 2, &SampleExecution::FullSim);

    let mut survivor: Option<SampledReport> = None;
    let mut checkpoint_bytes: Option<Vec<u8>> = None;
    for round in 0..64 {
        // "Kill": drop the previous sampler entirely; only the serialized
        // checkpoint survives into this iteration.
        let mut sampler = match &checkpoint_bytes {
            None => Sampler::new(&spec, &plan, &SampleExecution::FullSim, 4),
            Some(bytes) => {
                let checkpoint = SamplerCheckpoint::decode(bytes).expect("checkpoint round-trips");
                Sampler::restore(&spec, &plan, &SampleExecution::FullSim, 1, &checkpoint)
                    .expect("checkpoint matches spec and plan")
            }
        };
        let threads = 1 + (round % 4) as usize;
        if sampler.run_rounds(threads, Some(1)) {
            survivor = Some(sampler.report());
            break;
        }
        checkpoint_bytes = Some(sampler.checkpoint().encode());
    }
    let resumed = survivor.expect("campaign completes within 64 single-round shards");
    assert_eq!(resumed.to_json(), uninterrupted.to_json());
}

/// A paused sampler's report is a valid partial view: fewer samples, wider
/// intervals, nothing converged prematurely.
#[test]
fn partial_reports_are_consistent() {
    let spec = test_spec();
    let plan = test_plan();
    let mut sampler = Sampler::new(&spec, &plan, &SampleExecution::FullSim, 2);
    assert!(!sampler.run_rounds(2, Some(1)));
    let partial = sampler.report();
    assert_eq!(
        partial.total_samples,
        plan.batch * partial.strata.len() as u64
    );
    for stratum in &partial.strata {
        // batch == min_samples here, so the stopping rule IS consulted
        // after round one — it must still decline: a Wilson interval at
        // n = 16 is far wider than the 5 % target at any failure rate.
        assert!(
            !stratum.converged,
            "a 16-sample interval cannot meet the 5% target"
        );
        assert!(stratum.ci_high - stratum.ci_low > 0.0);
    }
}

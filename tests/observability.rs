//! The observability layer's determinism contract:
//!
//! 1. **Zero perturbation** — a campaign run with an enabled [`Obs`] handle
//!    produces byte-identical report JSON to the same campaign run with
//!    observability disabled.
//! 2. **Counter-section identity** — the deterministic sections of the
//!    metrics dump (`counter_section_json`) are byte-identical across
//!    worker-thread counts and across a fresh run versus a
//!    checkpoint/resume shard split, because they are projected from the
//!    final (byte-identical) reports, never incremented live.
//! 3. **Cross-engine identity** — the engine-independent sections
//!    (`campaign_section_json`) are byte-identical between the full-sim and
//!    trace-backed engines on the same spec; only the engine name and
//!    `engine_counters` may differ.
//! 4. **Wall clock stays out** — timing fields appear in the full dump but
//!    never in a compared section.
//! 5. **Degenerate-baseline surfacing** — `degenerate_baselines` is present
//!    in both report JSON documents (not just the rendered WARNING line)
//!    and agrees with the projected metrics counter.

use laec::core::sampling::{Sampler, SamplerCheckpoint};
use laec::core::spec::ExecutionMode;
use laec::prelude::*;

/// A small fault grid: 1 workload x 2 schemes x 2 fault seeds.
fn grid_spec(mode: ExecutionMode) -> ValidatedSpec {
    let mut builder = CampaignBuilder::smoke()
        .named_workloads(["vector_sum"])
        .schemes([EccScheme::NoEcc, EccScheme::Laec])
        .fault_seeds([1, 2])
        .fault_interval(200);
    if matches!(mode, ExecutionMode::TraceBacked { .. }) {
        builder = builder.trace_backed();
    }
    builder.validate().expect("valid spec")
}

/// A small sampled campaign: 1 workload x 1 scheme, 16-sample budget.
fn sampled_spec() -> ValidatedSpec {
    CampaignBuilder::smoke()
        .named_workloads(["vector_sum"])
        .schemes([EccScheme::Laec])
        .sampled(16)
        .batch(8)
        .min_samples(8)
        .validate()
        .expect("valid sampled spec")
}

#[test]
fn observed_run_report_is_byte_identical_to_plain_run() {
    let plain = Campaign::new(grid_spec(ExecutionMode::Full)).run(2);
    let obs = Obs::enabled();
    let observed = Campaign::new(grid_spec(ExecutionMode::Full)).run_observed(2, &obs);
    assert_eq!(plain.to_json(), observed.to_json());
    assert_eq!(plain.render(), observed.render());
    // And the dump actually recorded the campaign.
    assert_eq!(
        obs.dump().counters["campaign.cells"],
        plain.grid().expect("grid mode").cells.len() as u64
    );
}

#[test]
fn counter_section_is_thread_count_invariant() {
    let one = Obs::enabled();
    let eight = Obs::enabled();
    let _ = Campaign::new(grid_spec(ExecutionMode::Full)).run_observed(1, &one);
    let _ = Campaign::new(grid_spec(ExecutionMode::Full)).run_observed(8, &eight);
    assert_eq!(
        one.dump().counter_section_json(),
        eight.dump().counter_section_json(),
        "deterministic sections must not depend on worker count"
    );
}

#[test]
fn counter_section_survives_a_shard_resume_split() {
    // Fresh, uninterrupted run through the engine dispatch.
    let fresh_obs = Obs::enabled();
    let _ = Campaign::new(sampled_spec()).run_observed(2, &fresh_obs);

    // The same campaign driven as two shards with a checkpoint between
    // them — the CLI's --checkpoint/--shard-rounds/--resume path.
    let validated = sampled_spec();
    let grid = validated.grid();
    let plan = *validated.plan().expect("sampled mode");
    let execution = validated.sample_execution().expect("sampled mode").clone();
    let mut first = Sampler::new(&grid, &plan, &execution, 2);
    assert!(
        !first.run_rounds(2, Some(1)),
        "one round must not complete a 16-sample budget in 8-sample batches"
    );
    let checkpoint =
        SamplerCheckpoint::decode(&first.checkpoint().encode()).expect("checkpoint round-trips");
    let mut resumed = Sampler::restore(&grid, &plan, &execution, 2, &checkpoint).expect("restores");
    assert!(resumed.run_rounds(2, None));
    let sharded_outcome = CampaignOutcome::Sampled {
        report: resumed.report(),
        trace_stats: None,
    };
    let sharded_obs = Obs::enabled();
    sharded_obs.set_context(&validated.fingerprint_hex(), "sampled");
    record_outcome_metrics(&sharded_outcome, &sharded_obs);

    assert_eq!(
        fresh_obs.dump().counter_section_json(),
        sharded_obs.dump().counter_section_json(),
        "a shard/resume split must project the same deterministic sections"
    );
}

#[test]
fn campaign_section_is_engine_invariant_between_full_and_trace_backed() {
    let full = Obs::enabled();
    let traced = Obs::enabled();
    let _ = Campaign::new(grid_spec(ExecutionMode::Full)).run_observed(2, &full);
    let _ = Campaign::new(grid_spec(ExecutionMode::TraceBacked { cache_dir: None }))
        .run_observed(2, &traced);
    // The engine-independent projection is identical because the reports
    // are; the engine-specific sections legitimately differ.
    assert_eq!(
        full.dump().campaign_section_json(),
        traced.dump().campaign_section_json()
    );
    let full_dump = full.dump();
    let traced_dump = traced.dump();
    assert_eq!(full_dump.engine, "full");
    assert_eq!(traced_dump.engine, "trace-backed");
    assert!(full_dump.engine_counters.is_empty());
    assert!(traced_dump.engine_counters.contains_key("trace.recorded"));
}

#[test]
fn wall_clock_timings_are_excluded_from_every_compared_section() {
    let obs = Obs::enabled();
    let _ = Campaign::new(grid_spec(ExecutionMode::Full)).run_observed(2, &obs);
    let dump = obs.dump();
    assert!(
        !dump.timings.is_empty(),
        "an observed full-sim campaign must record phase spans"
    );
    let full = dump.to_json();
    assert!(full.contains("\"timings\""));
    assert!(full.contains("total_ms"));
    for section in [dump.counter_section_json(), dump.campaign_section_json()] {
        assert!(!section.contains("timings"), "wall clock leaked: {section}");
        assert!(
            !section.contains("total_ms"),
            "wall clock leaked: {section}"
        );
        assert!(!section.contains("_ns"), "wall clock leaked: {section}");
    }
}

#[test]
fn dump_round_trips_through_its_json_form() {
    let obs = Obs::enabled();
    let _ = Campaign::new(grid_spec(ExecutionMode::Full)).run_observed(2, &obs);
    let dump = obs.dump();
    let parsed = MetricsDump::from_json(&dump.to_json()).expect("dump parses");
    assert_eq!(parsed, dump);
    assert_eq!(parsed.counter_section_json(), dump.counter_section_json());
}

#[test]
fn degenerate_baselines_is_surfaced_in_both_report_json_documents() {
    // Grid report: the field is part of the serialized document, so JSON
    // consumers see the warning condition without parsing rendered text.
    let grid_outcome = Campaign::new(grid_spec(ExecutionMode::Full)).run(2);
    let grid_json = grid_outcome.to_json();
    assert!(
        grid_json.contains("\"degenerate_baselines\": 0"),
        "grid report JSON must carry the degenerate-baseline count"
    );

    // Sampled report: same field, same contract.
    let obs = Obs::enabled();
    let sampled_outcome = Campaign::new(sampled_spec()).run_observed(2, &obs);
    let sampled_json = sampled_outcome.to_json();
    assert!(
        sampled_json.contains("\"degenerate_baselines\": 0"),
        "sampled report JSON must carry the degenerate-baseline count"
    );

    // And the metrics projection agrees with the report field.
    assert_eq!(
        obs.dump().counters["campaign.degenerate_baselines"],
        sampled_outcome
            .sampled()
            .expect("sampled mode")
            .degenerate_baselines
    );
}

#[test]
fn sampled_progress_events_stream_per_stratum_convergence() {
    use laec::obs::JsonlSink;
    use std::sync::{Arc, Mutex};

    /// Captures the emitted byte stream in memory for assertion.
    #[derive(Debug, Clone)]
    struct Capture(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("capture lock").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let captured = Arc::new(Mutex::new(Vec::new()));
    let obs = Obs::enabled();
    obs.attach_progress(Box::new(JsonlSink::to_writer(Box::new(Capture(
        captured.clone(),
    )))));
    let _ = Campaign::new(sampled_spec()).run_observed(2, &obs);

    let captured = captured.lock().expect("capture lock");
    let text = String::from_utf8(captured.clone()).expect("UTF-8 JSONL");
    let lines: Vec<&str> = text.lines().collect();
    let fingerprint = sampled_spec().fingerprint_hex();
    assert!(lines[0].contains("\"event\":\"campaign_start\""));
    assert!(lines
        .last()
        .expect("events")
        .contains("\"event\":\"campaign_end\""));
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"event\":\"round\"") && l.contains("\"width\":")),
        "sampled campaigns must stream per-stratum interval widths"
    );
    for line in lines.iter() {
        assert!(
            line.contains(&format!("\"spec\":\"{fingerprint}\"")),
            "every event is stamped with the spec fingerprint: {line}"
        );
    }
}

#[test]
fn execution_mode_never_changes_the_report_bytes_under_observation() {
    // The cross-engine byte-identity oracle, now with observation enabled
    // on both sides: full-sim and trace-backed replay agree bit-for-bit
    // even while both are being instrumented.
    let full = Campaign::new(grid_spec(ExecutionMode::Full)).run_observed(4, &Obs::enabled());
    let traced = Campaign::new(grid_spec(ExecutionMode::TraceBacked { cache_dir: None }))
        .run_observed(4, &Obs::enabled());
    assert_eq!(full.to_json(), traced.to_json());
}

//! Shared test plumbing: run a legacy grid description through the unified
//! `spec::Campaign` dispatch in a given execution mode.
//!
//! Each integration-test crate pulls in the subset it needs (hence the
//! `dead_code` allowance).

#![allow(dead_code)]

use std::path::Path;

use laec::core::campaign::CampaignSpec;
use laec::core::sampling::{SampleExecution, SampledReport, SamplingPlan};
use laec::core::trace_backed::TracedCampaign;
use laec::core::{Campaign, CampaignOutcome, CampaignReport, ExecutionMode};

/// Runs a grid spec through the unified dispatch in the given mode.
pub fn run_mode(spec: &CampaignSpec, mode: ExecutionMode, threads: usize) -> CampaignOutcome {
    let spec = laec::core::spec::CampaignSpec::from_grid(spec, mode);
    Campaign::new(spec.validate().expect("valid spec")).run(threads)
}

/// Full-simulation mode.
pub fn run_campaign(spec: &CampaignSpec, threads: usize) -> CampaignReport {
    run_mode(spec, ExecutionMode::Full, threads)
        .into_grid()
        .expect("full mode yields a grid report")
}

/// The forced-SMP engine (every cell as an N-core system).
pub fn run_campaign_smp(spec: &CampaignSpec, threads: usize) -> CampaignReport {
    run_mode(spec, ExecutionMode::Smp, threads)
        .into_grid()
        .expect("smp mode yields a grid report")
}

/// Trace-backed mode, with the record/replay counters.
pub fn run_campaign_trace_backed(
    spec: &CampaignSpec,
    threads: usize,
    cache_dir: Option<&Path>,
) -> TracedCampaign {
    let mode = ExecutionMode::TraceBacked {
        cache_dir: cache_dir.map(Path::to_path_buf),
    };
    match run_mode(spec, mode, threads) {
        CampaignOutcome::Grid {
            report,
            trace_stats,
        } => TracedCampaign {
            report,
            stats: trace_stats.expect("trace-backed mode reports its counters"),
        },
        CampaignOutcome::Sampled { .. } => unreachable!("trace-backed mode is a grid mode"),
    }
}

/// Sampled (stratified Monte-Carlo) mode.
pub fn run_campaign_sampled(
    spec: &CampaignSpec,
    plan: &SamplingPlan,
    threads: usize,
    execution: &SampleExecution,
) -> SampledReport {
    let mode = ExecutionMode::Sampled {
        plan: *plan,
        execution: execution.clone(),
    };
    run_mode(spec, mode, threads)
        .into_sampled()
        .expect("sampled mode yields a statistical report")
}

//! Validates the quantitative *shape* of the paper's evaluation (§IV,
//! Table II, Figure 8) on the reproduced platform.  Absolute numbers need not
//! match the authors' SoCLib/NGMP testbed, but orderings, rough magnitudes
//! and the named outliers must.

use laec::core::{characterization, figure8};
use laec::pipeline::EccScheme;
use laec::workloads::GeneratorConfig;

fn shape() -> GeneratorConfig {
    GeneratorConfig::evaluation()
}

/// Table II: the measured suite averages stay close to the published 89 %
/// hit rate, 60 % dependent loads and 25 % loads.
#[test]
fn table2_averages_are_reproduced() {
    let table = characterization(&shape());
    assert_eq!(table.rows.len(), 16);
    assert!(
        (table.average.hit_loads_pct - 89.0).abs() <= 6.0,
        "hit rate {:.1}% vs paper 89%",
        table.average.hit_loads_pct
    );
    assert!(
        (table.average.dependent_loads_pct - 60.0).abs() <= 8.0,
        "dependent loads {:.1}% vs paper 60%",
        table.average.dependent_loads_pct
    );
    assert!(
        (table.average.loads_pct - 25.0).abs() <= 4.0,
        "loads {:.1}% vs paper 25%",
        table.average.loads_pct
    );
    // Per-benchmark extremes: cacheb has the fewest dependent loads and the
    // worst hit rate; every benchmark keeps loads between ~15 % and ~35 %.
    let cacheb = table.rows.iter().find(|r| r.name == "cacheb").unwrap();
    assert!(cacheb.dependent_loads_pct <= 25.0);
    assert!(
        cacheb.hit_loads_pct <= table.average.hit_loads_pct - 3.0,
        "cacheb ({:.1}%) sits well below the suite average ({:.1}%)",
        cacheb.hit_loads_pct,
        table.average.hit_loads_pct
    );
    for row in &table.rows {
        assert!(
            row.loads_pct > 14.0 && row.loads_pct < 36.0,
            "{}: {}",
            row.name,
            row.loads_pct
        );
    }
}

/// Figure 8: per-benchmark and average orderings, rough magnitudes and the
/// §IV.A outliers.
#[test]
fn figure8_shape_is_reproduced() {
    let figure = figure8(&shape());

    // Ordering per benchmark: LAEC ≤ Extra-Stage ≤ Extra-Cycle (within noise).
    for row in &figure.rows {
        assert!(row.laec <= row.extra_stage + 1e-9, "{}", row.name);
        assert!(row.extra_stage <= row.extra_cycle + 0.005, "{}", row.name);
    }

    // Average magnitudes: Extra-Cycle is the worst (paper ≈17 %), Extra-Stage
    // sits in between (≈10 %), LAEC stays small (<4 % in the paper; allow a
    // little slack for the synthetic workloads).
    let extra_cycle = figure.average_increase_pct(EccScheme::ExtraCycle);
    let extra_stage = figure.average_increase_pct(EccScheme::ExtraStage);
    let laec = figure.average_increase_pct(EccScheme::Laec);
    assert!(extra_cycle > extra_stage && extra_stage > laec);
    assert!(
        (8.0..=26.0).contains(&extra_cycle),
        "Extra-Cycle {extra_cycle:.1}%"
    );
    assert!(
        (5.0..=18.0).contains(&extra_stage),
        "Extra-Stage {extra_stage:.1}%"
    );
    assert!(
        laec < 6.5,
        "LAEC {laec:.1}% should stay close to the ideal design"
    );

    // §IV.A: LAEC improves on Extra-Stage and Extra-Cycle by a meaningful
    // margin on average (paper: ~6 and ~13 percentage points).
    assert!(figure.laec_gain_over_extra_stage_pct() >= 3.0);
    assert!(figure.laec_gain_over_extra_cycle_pct() >= 8.0);

    // §IV.A: the four benchmarks whose dependent loads also have their
    // address produced right before the load show almost no LAEC improvement.
    for name in ["aifftr", "aiifft", "bitmnp", "matrix"] {
        let row = figure.rows.iter().find(|r| r.name == name).unwrap();
        assert!(
            row.extra_stage - row.laec < 0.035,
            "{name}: LAEC {:.3} should stay close to Extra-Stage {:.3}",
            row.laec,
            row.extra_stage
        );
    }
    // ... while the six low-hazard benchmarks stay near the ideal design.
    for name in ["basefp", "cacheb", "canrdr", "puwmod", "rspeed", "ttsprk"] {
        let row = figure.rows.iter().find(|r| r.name == name).unwrap();
        assert!(
            row.laec < 1.035,
            "{name}: LAEC {:.3} should be below ~3.5 %",
            row.laec
        );
    }
}

/// The LAEC look-ahead covers the majority of loads on average (the reason
/// its average overhead stays under 4 % in the paper).
#[test]
fn lookahead_covers_most_loads_on_average() {
    let figure = figure8(&shape());
    assert!(
        figure.average.lookahead_rate > 0.5,
        "average look-ahead rate {:.2}",
        figure.average.lookahead_rate
    );
    let matrix = figure.rows.iter().find(|r| r.name == "matrix").unwrap();
    let basefp = figure.rows.iter().find(|r| r.name == "basefp").unwrap();
    assert!(matrix.lookahead_rate < basefp.lookahead_rate);
}

//! Integration tests for the parallel campaign engine: determinism across
//! worker counts (the report must be byte-identical), and architectural
//! equivalence across every cell of a multi-platform grid.

use laec::core::campaign::{CampaignSpec, PlatformVariant, WorkloadSet};
use laec::pipeline::EccScheme;
use laec::workloads::GeneratorConfig;

mod common;
use common::run_campaign;

fn test_spec() -> CampaignSpec {
    CampaignSpec {
        workloads: WorkloadSet::Named(vec![
            "vector_sum".to_string(),
            "fir_filter".to_string(),
            "pointer_chase".to_string(),
            "a2time".to_string(),
            "cacheb".to_string(),
        ]),
        generator: GeneratorConfig::smoke(),
        schemes: vec![
            EccScheme::NoEcc,
            EccScheme::ExtraCycle,
            EccScheme::ExtraStage,
            EccScheme::Laec,
            EccScheme::SpeculateFlush { flush_penalty: 4 },
        ],
        platforms: vec![
            PlatformVariant::WriteBack,
            PlatformVariant::WriteThrough,
            PlatformVariant::ContendedBus(8),
        ],
        fault_seeds: vec![11, 22],
        fault_interval: 500,
        fault_target: laec::mem::FaultTarget::Data,
        protocol: laec::mem::ProtocolKind::Mesi,
        seed: 0x5EED_1AEC,
    }
}

/// A parallel run with N threads produces byte-identical `CampaignReport`
/// JSON to a serial run with the same seed — determinism must not depend on
/// scheduling.
#[test]
fn parallel_report_is_byte_identical_to_serial() {
    let spec = test_spec();
    let serial = run_campaign(&spec, 1);
    for threads in [2, 4, 8] {
        let parallel = run_campaign(&spec, threads);
        assert_eq!(
            parallel, serial,
            "{threads}-thread report diverged structurally"
        );
        assert_eq!(
            parallel.to_json(),
            serial.to_json(),
            "{threads}-thread JSON not byte-identical"
        );
    }
}

/// `architecturally_equivalent()` holds across every grid cell: the schemes
/// may only change timing, on every platform in the grid.
#[test]
fn equivalence_holds_across_every_grid_cell() {
    let spec = test_spec();
    let report = run_campaign(&spec, 4);
    assert_eq!(
        report.equivalence.len(),
        5 * 3,
        "one equivalence verdict per workload x platform group"
    );
    for check in &report.equivalence {
        assert!(
            check.equivalent,
            "{} on {} diverged",
            check.workload, check.platform
        );
    }
    assert!(report.architecturally_equivalent());
}

/// The grid covers every axis combination and the fault-free no-ECC cell of
/// each group anchors the slowdown at exactly 1.0.
#[test]
fn grid_shape_and_baselines() {
    let spec = test_spec();
    let report = run_campaign(&spec, 4);
    // 5 workloads x 3 platforms x 5 schemes x (1 fault-free + 2 faulty).
    assert_eq!(report.total_jobs, 5 * 3 * 5 * 3);
    for cell in report
        .cells
        .iter()
        .filter(|c| c.scheme == "no-ecc" && c.fault_seed.is_none())
    {
        assert_eq!(
            cell.slowdown,
            Some(1.0),
            "{} on {}",
            cell.workload,
            cell.platform
        );
    }
    // LAEC is bounded by Extra-Stage on the paper platform (§III.E), cell by cell.
    for row in report.slowdowns.rows.iter().filter(|r| r.platform == "wb") {
        let index = |label: &str| {
            report
                .slowdowns
                .schemes
                .iter()
                .position(|s| s == label)
                .expect("scheme in matrix")
        };
        let laec = row.slowdowns[index("laec")].expect("laec slowdown");
        let extra_stage = row.slowdowns[index("extra-stage")].expect("extra-stage slowdown");
        assert!(
            laec <= extra_stage + 1e-9,
            "{}: {laec} vs {extra_stage}",
            row.workload
        );
    }
}

//! Property-style integration tests: randomly generated programs must behave
//! architecturally identically under every DL1 ECC deployment scheme (the
//! schemes may only change *timing*), and the scheme performance ordering
//! must hold for arbitrary workload profiles.
//!
//! Originally written against `proptest`; the offline build environment
//! cannot fetch it, so the same properties are exercised over a seeded,
//! deterministic sample of the identical input space (12 cases each, like
//! the original `ProptestConfig`).

use laec::pipeline::{EccScheme, PipelineConfig, Simulator};
use laec::workloads::{generate, GeneratorConfig, WorkloadProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u32 = 12;

fn unit(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    lo + (rng.gen_range(0..1_000_000u64) as f64 / 1_000_000.0) * (hi - lo)
}

/// Mirrors the original proptest strategy's ranges.
fn arbitrary_profile(rng: &mut StdRng) -> WorkloadProfile {
    WorkloadProfile {
        name: "random",
        load_fraction: unit(rng, 0.10, 0.32),
        dl1_hit_rate: unit(rng, 0.70, 1.0),
        dependent_load_fraction: unit(rng, 0.0, 0.9),
        address_producer_fraction: unit(rng, 0.0, 0.9),
        store_fraction: unit(rng, 0.0, 0.10),
    }
}

/// All five schemes retire the same instructions, produce the same registers
/// and the same final memory image for any generated program.
#[test]
fn schemes_are_architecturally_equivalent() {
    let mut rng = StdRng::seed_from_u64(0x1AEC_0001);
    for case in 0..CASES {
        let profile = arbitrary_profile(&mut rng);
        let seed = rng.gen_range(0..1_000u64);
        let config = GeneratorConfig {
            body_instructions: 90,
            iterations: 4,
            seed,
        };
        let program = generate(&profile, &config);
        let mut reference: Option<(u64, [u32; 32], u64)> = None;
        for scheme in [
            EccScheme::NoEcc,
            EccScheme::ExtraCycle,
            EccScheme::ExtraStage,
            EccScheme::Laec,
            EccScheme::SpeculateFlush { flush_penalty: 4 },
        ] {
            let result = Simulator::run(program.clone(), PipelineConfig::for_scheme(scheme));
            assert!(
                !result.hit_instruction_limit,
                "case {case}: {scheme} hit limit"
            );
            let fingerprint = (
                result.stats.instructions,
                result.registers,
                result.memory_checksum,
            );
            match &reference {
                None => reference = Some(fingerprint),
                Some(expected) => {
                    assert_eq!(&fingerprint, expected, "case {case}: {scheme} diverged");
                }
            }
        }
    }
}

/// The paper's ordering holds for any profile: the ideal design is never
/// slower than LAEC, and LAEC is never slower than Extra-Stage (§III.E: "our
/// look-ahead proposal will always perform equal or better than the Extra
/// stage implementation").
#[test]
fn laec_is_bounded_by_ideal_and_extra_stage() {
    let mut rng = StdRng::seed_from_u64(0x1AEC_0002);
    for case in 0..CASES {
        let profile = arbitrary_profile(&mut rng);
        let seed = rng.gen_range(0..1_000u64);
        let config = GeneratorConfig {
            body_instructions: 90,
            iterations: 4,
            seed,
        };
        let program = generate(&profile, &config);
        let cycles = |scheme| {
            Simulator::run(program.clone(), PipelineConfig::for_scheme(scheme))
                .stats
                .cycles
        };
        let ideal = cycles(EccScheme::NoEcc);
        let laec = cycles(EccScheme::Laec);
        let extra_stage = cycles(EccScheme::ExtraStage);
        assert!(ideal <= laec, "case {case}: ideal {ideal} vs LAEC {laec}");
        assert!(
            laec <= extra_stage,
            "case {case}: LAEC {laec} vs Extra-Stage {extra_stage}"
        );
    }
}

//! Property-based integration tests: randomly generated programs must behave
//! architecturally identically under every DL1 ECC deployment scheme (the
//! schemes may only change *timing*), and the scheme performance ordering
//! must hold for arbitrary workload profiles.

use laec::pipeline::{EccScheme, PipelineConfig, Simulator};
use laec::workloads::{generate, GeneratorConfig, WorkloadProfile};
use proptest::prelude::*;

fn arbitrary_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        0.10f64..0.32,
        0.70f64..1.0,
        0.0f64..0.9,
        0.0f64..0.9,
        0.0f64..0.10,
    )
        .prop_map(|(loads, hit, dependent, producer, stores)| WorkloadProfile {
            name: "random",
            load_fraction: loads,
            dl1_hit_rate: hit,
            dependent_load_fraction: dependent,
            address_producer_fraction: producer,
            store_fraction: stores,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// All five schemes retire the same instructions, produce the same
    /// registers and the same final memory image for any generated program.
    #[test]
    fn schemes_are_architecturally_equivalent(profile in arbitrary_profile(), seed in 0u64..1_000) {
        let config = GeneratorConfig { body_instructions: 90, iterations: 4, seed };
        let program = generate(&profile, &config);
        let mut reference: Option<(u64, [u32; 32], u64)> = None;
        for scheme in [
            EccScheme::NoEcc,
            EccScheme::ExtraCycle,
            EccScheme::ExtraStage,
            EccScheme::Laec,
            EccScheme::SpeculateFlush { flush_penalty: 4 },
        ] {
            let result = Simulator::run(program.clone(), PipelineConfig::for_scheme(scheme));
            prop_assert!(!result.hit_instruction_limit);
            let fingerprint = (
                result.stats.instructions,
                result.registers,
                result.memory_checksum,
            );
            match &reference {
                None => reference = Some(fingerprint),
                Some(expected) => prop_assert_eq!(&fingerprint, expected, "{} diverged", scheme),
            }
        }
    }

    /// The paper's ordering holds for any profile: the ideal design is never
    /// slower than LAEC, and LAEC is never slower than Extra-Stage
    /// (§III.E: "our look-ahead proposal will always perform equal or better
    /// than the Extra stage implementation").
    #[test]
    fn laec_is_bounded_by_ideal_and_extra_stage(profile in arbitrary_profile(), seed in 0u64..1_000) {
        let config = GeneratorConfig { body_instructions: 90, iterations: 4, seed };
        let program = generate(&profile, &config);
        let cycles = |scheme| Simulator::run(program.clone(), PipelineConfig::for_scheme(scheme)).stats.cycles;
        let ideal = cycles(EccScheme::NoEcc);
        let laec = cycles(EccScheme::Laec);
        let extra_stage = cycles(EccScheme::ExtraStage);
        prop_assert!(ideal <= laec, "ideal {} vs LAEC {}", ideal, laec);
        prop_assert!(laec <= extra_stage, "LAEC {} vs Extra-Stage {}", laec, extra_stage);
    }
}

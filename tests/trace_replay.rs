//! End-to-end guarantees of the trace capture & replay subsystem: a
//! trace-backed campaign must serialize *byte-identically* to the full-
//! simulation campaign for the same spec — fault axis included — and the
//! persisted trace cache must round-trip.

use std::path::PathBuf;

use laec::core::campaign::{CampaignSpec, PlatformVariant, WorkloadSet};
use laec::pipeline::EccScheme;

mod common;
use common::{run_campaign, run_campaign_trace_backed};

/// Two workloads × two ECC schemes × fault seeds on the paper platform:
/// the acceptance grid of the subsystem.
fn secded_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::smoke();
    spec.workloads = WorkloadSet::Named(vec!["vector_sum".into(), "fir_filter".into()]);
    spec.schemes = vec![EccScheme::Laec, EccScheme::ExtraStage];
    spec.platforms = vec![PlatformVariant::WriteBack];
    spec.fault_seeds = vec![0xA1, 0xB2, 0xC3];
    spec.fault_interval = 200;
    spec
}

/// A divergence-heavy grid: the unprotected no-ECC baseline corrupts
/// silently and the write-through platform recovers by refetch — both
/// force replay fallbacks, which must still be byte-identical.
fn divergent_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::smoke();
    spec.workloads = WorkloadSet::Named(vec!["vector_sum".into(), "table_lookup".into()]);
    spec.schemes = vec![EccScheme::NoEcc, EccScheme::Laec];
    spec.platforms = vec![PlatformVariant::WriteBack, PlatformVariant::WriteThrough];
    spec.fault_seeds = vec![7, 8];
    spec.fault_interval = 60;
    spec
}

#[test]
fn trace_backed_campaign_is_byte_identical_on_the_secded_grid() {
    let spec = secded_spec();
    let full = run_campaign(&spec, 2);
    let traced = run_campaign_trace_backed(&spec, 2, None);
    assert_eq!(traced.report.to_json(), full.to_json(), "byte-identical");
    // 2 workloads x 2 schemes = 4 recordings, 4 x 3 faulty cells.
    assert_eq!(traced.stats.recorded, 4);
    assert_eq!(traced.stats.replayed + traced.stats.fallbacks, 12);
    assert!(
        traced.stats.replayed >= 10,
        "SECDED absorbs sparse single-bit strikes; almost every faulty cell \
         must replay without falling back ({})",
        traced.stats
    );
    // The faulty cells really injected faults (the replay did real work).
    let injected: u64 = traced
        .report
        .cells
        .iter()
        .filter(|c| c.fault_seed.is_some())
        .map(|c| c.faults_injected)
        .sum();
    assert!(injected > 0, "faults were injected during replay");
}

#[test]
fn trace_backed_campaign_is_byte_identical_when_faults_force_fallbacks() {
    let spec = divergent_spec();
    let full = run_campaign(&spec, 2);
    let traced = run_campaign_trace_backed(&spec, 2, None);
    assert_eq!(traced.report.to_json(), full.to_json(), "byte-identical");
    assert!(
        traced.stats.fallbacks > 0,
        "silent no-ECC corruption / WT refetches must trip the divergence \
         checks somewhere in this grid ({})",
        traced.stats
    );
}

#[test]
fn fault_free_grids_replay_from_the_trace_cache() {
    let mut spec = secded_spec();
    spec.fault_seeds = vec![0xEE];
    let cache = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("trace-cache-test");
    let _ = std::fs::remove_dir_all(&cache);

    let first = run_campaign_trace_backed(&spec, 2, Some(&cache));
    assert_eq!(first.stats.recorded, 4);
    assert_eq!(first.stats.cache_loads, 0);
    assert_eq!(first.stats.cache_write_failures, 0);

    let second = run_campaign_trace_backed(&spec, 2, Some(&cache));
    assert_eq!(second.stats.recorded, 0, "everything came from the cache");
    assert_eq!(second.stats.cache_loads, 4);
    assert_eq!(second.report.to_json(), first.report.to_json());

    // A different master seed must invalidate the cache (fingerprints).
    let mut reseeded = spec.clone();
    reseeded.seed ^= 0xDEAD;
    let third = run_campaign_trace_backed(&reseeded, 2, Some(&cache));
    assert_eq!(third.stats.cache_loads, 0);
    assert_eq!(third.stats.recorded, 4);

    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn thread_count_does_not_change_trace_backed_reports() {
    let spec = secded_spec();
    let one = run_campaign_trace_backed(&spec, 1, None);
    let eight = run_campaign_trace_backed(&spec, 8, None);
    assert_eq!(one.report.to_json(), eight.report.to_json());
    assert_eq!(one.stats, eight.stats);
}

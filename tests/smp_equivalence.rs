//! The SMP equivalence anchor and the coherence-metadata fault classes.
//!
//! 1. A 1-core SMP system must be indistinguishable from the uniprocessor
//!    engine: `ExecutionMode::Smp` (which builds a real `laec_smp` system
//!    for every cell) must serialize *byte-identically* to
//!    `ExecutionMode::Full` over the full workload × scheme grid —
//!    fault-free and fault-injecting, write-back and write-through.
//! 2. Metadata strikes (MESI state / tag bits) must surface as their own
//!    silent-data-corruption classes in the report.

use laec::core::campaign::{CampaignSpec, PlatformVariant, WorkloadSet};
use laec::mem::FaultTarget;
use laec::pipeline::EccScheme;

mod common;
use common::{run_campaign, run_campaign_smp};

fn anchor_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::smoke();
    // The full kernel suite × the four Figure 8 schemes, on both the
    // write-back and the write-through platform, fault-free plus one
    // injecting seed (so the injector streams must match too).
    spec.workloads = WorkloadSet::Kernels;
    spec.schemes = EccScheme::figure8_set().to_vec();
    spec.platforms = vec![PlatformVariant::WriteBack, PlatformVariant::WriteThrough];
    spec.fault_seeds = vec![11];
    spec.fault_interval = 400;
    spec
}

#[test]
fn one_core_smp_matches_the_uniprocessor_engine_byte_for_byte() {
    let spec = anchor_spec();
    let uniprocessor = run_campaign(&spec, 2);
    let smp = run_campaign_smp(&spec, 2);
    assert_eq!(
        uniprocessor.to_json(),
        smp.to_json(),
        "a 1-core coherent system must be the uniprocessor, bit for bit"
    );
}

#[test]
fn one_core_smp_matches_under_metadata_strikes_too() {
    let mut spec = anchor_spec();
    spec.workloads = WorkloadSet::Named(vec!["vector_sum".into(), "cache_buster".into()]);
    spec.fault_target = FaultTarget::Tag;
    spec.fault_interval = 200;
    let uniprocessor = run_campaign(&spec, 2);
    let smp = run_campaign_smp(&spec, 1);
    assert_eq!(uniprocessor.to_json(), smp.to_json());
}

#[test]
fn smp_platform_cells_are_deterministic_and_architecturally_equivalent() {
    let mut spec = CampaignSpec::smoke();
    spec.workloads = WorkloadSet::Named(vec!["vector_sum".into(), "fir_filter".into()]);
    spec.schemes = EccScheme::figure8_set().to_vec();
    spec.platforms = vec![PlatformVariant::WriteBack, PlatformVariant::smp(4)];
    let one = run_campaign(&spec, 1);
    let eight = run_campaign(&spec, 8);
    assert_eq!(one.to_json(), eight.to_json(), "thread-count invariance");
    assert!(one.architecturally_equivalent());
    // The background cores cost the observed core real bandwidth: every
    // smp4 cell is slower than its wb sibling.
    for cell in one.cells.iter().filter(|c| c.platform == "smp4") {
        let sibling = one
            .cells
            .iter()
            .find(|c| c.platform == "wb" && c.workload == cell.workload && c.scheme == cell.scheme)
            .expect("wb sibling");
        assert!(
            cell.cycles >= sibling.cycles,
            "{}/{}: smp4 {} vs wb {}",
            cell.workload,
            cell.scheme,
            cell.cycles,
            sibling.cycles
        );
        assert_eq!(
            cell.registers_fingerprint, sibling.registers_fingerprint,
            "read-only background traffic must not perturb results"
        );
        assert!(cell.snoop_lookups > 0, "real snooping happened");
    }
}

#[test]
fn metadata_strikes_surface_as_distinct_sdc_classes() {
    let mut spec = CampaignSpec::smoke();
    spec.workloads = WorkloadSet::Named(vec!["cache_buster".into()]);
    // cache_buster writes a large footprint and reads it back later: tag
    // and state strikes on dirty lines reliably lose writebacks and serve
    // stale refetches.  no-ecc shows the strikes are invisible to the data
    // array; laec shows even SECDED cannot see metadata corruption.
    spec.schemes = vec![EccScheme::NoEcc, EccScheme::Laec];
    spec.fault_seeds = vec![1, 2, 3];
    spec.fault_interval = 60;
    for target in [FaultTarget::State, FaultTarget::Tag] {
        spec.fault_target = target;
        let report = run_campaign(&spec, 2);
        let faulty: Vec<_> = report
            .cells
            .iter()
            .filter(|c| c.fault_seed.is_some())
            .collect();
        let injected: u64 = faulty.iter().map(|c| c.meta_faults_injected).sum();
        let lost: u64 = faulty.iter().map(|c| c.lost_writebacks).sum();
        let stale: u64 = faulty.iter().map(|c| c.stale_metadata_reads).sum();
        assert!(injected > 0, "{target:?}: strikes must land");
        assert!(
            lost + stale > 0,
            "{target:?}: metadata corruption must be classified (lost {lost}, stale {stale})"
        );
        assert_eq!(
            faulty.iter().map(|c| c.faults_corrected).sum::<u64>(),
            0,
            "{target:?}: the data array's code never even fires"
        );
        let text = laec::core::render_campaign(&report);
        assert!(text.contains("Metadata strikes:"), "{text}");
        assert!(text.contains("lost writebacks"), "{text}");
    }
}

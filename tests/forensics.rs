//! The fault-forensics layer's determinism contract:
//!
//! 1. **Zero perturbation** — a campaign run with forensics enabled
//!    produces byte-identical report JSON (and rendered text) to the same
//!    campaign run plain: the lifecycle hooks only observe.
//! 2. **Thread-count identity** — the forensics document is byte-identical
//!    for any worker-thread count, because every record is stamped with
//!    simulation cycles and sorted canonically per cell.
//! 3. **Cross-engine identity** — full simulation and trace-backed replay
//!    produce byte-identical forensics documents on the same spec: the
//!    replay re-issues the recorded (event, cycle) stream, so every strike,
//!    activation and outcome lands on the same cycle.
//! 4. **Schema** — the Chrome-trace export is valid JSON in the trace-event
//!    format, and the report's outcome classes track the ECC scheme
//!    (no-ecc cannot correct; LAEC corrects with measurable detection
//!    latency).

use laec::core::spec::ExecutionMode;
use laec::prelude::*;

/// A fault grid that actually activates faults: `fir_filter` re-reads its
/// coefficient and sample windows, so strikes at interval 200 are touched
/// before the run ends (unlike pure streaming kernels, where almost every
/// strike stays latent and is closed as masked).
fn grid_spec(mode: ExecutionMode) -> ValidatedSpec {
    let mut builder = CampaignBuilder::smoke()
        .named_workloads(["fir_filter"])
        .schemes([EccScheme::NoEcc, EccScheme::Laec])
        .fault_seeds([1, 2])
        .fault_interval(200);
    if matches!(mode, ExecutionMode::TraceBacked { .. }) {
        builder = builder.trace_backed();
    }
    builder.validate().expect("valid spec")
}

#[test]
fn forensic_run_report_is_byte_identical_to_plain_run() {
    let plain = Campaign::new(grid_spec(ExecutionMode::Full)).run(2);
    let (forensic, report) =
        Campaign::new(grid_spec(ExecutionMode::Full)).run_forensic(2, &Obs::disabled());
    assert_eq!(plain.to_json(), forensic.to_json());
    assert_eq!(plain.render(), forensic.render());
    let report = report.expect("the full engine traces lifecycles");
    assert!(report.total_faults() > 0);
}

#[test]
fn forensics_document_is_thread_count_invariant() {
    let (_, one) = Campaign::new(grid_spec(ExecutionMode::Full)).run_forensic(1, &Obs::disabled());
    let (_, eight) =
        Campaign::new(grid_spec(ExecutionMode::Full)).run_forensic(8, &Obs::disabled());
    let (one, eight) = (one.expect("forensics"), eight.expect("forensics"));
    assert_eq!(one.to_json(), eight.to_json());
    assert_eq!(one.render(true), eight.render(true));
    assert_eq!(one.chrome_trace_json(), eight.chrome_trace_json());
}

#[test]
fn forensics_document_is_engine_invariant() {
    let (_, full) = Campaign::new(grid_spec(ExecutionMode::Full)).run_forensic(2, &Obs::disabled());
    let (_, traced) = Campaign::new(grid_spec(ExecutionMode::TraceBacked { cache_dir: None }))
        .run_forensic(2, &Obs::disabled());
    let (full, traced) = (full.expect("forensics"), traced.expect("forensics"));
    assert!(full.total_faults() > 0);
    assert_eq!(full.to_json(), traced.to_json());
}

#[test]
fn outcome_classes_track_the_scheme() {
    let (_, report) =
        Campaign::new(grid_spec(ExecutionMode::Full)).run_forensic(2, &Obs::disabled());
    let report = report.expect("forensics");
    for cell in &report.cells {
        for record in &cell.records {
            // An activation always happens at or after the strike, and the
            // record's latency is exactly the distance.
            if let (Some(cycle), Some(latency)) = (record.activation_cycle, record.latency) {
                assert!(cycle >= record.strike_cycle);
                assert_eq!(latency, cycle - record.strike_cycle);
                assert!(record.activation.is_some());
            } else {
                // Never-touched strikes close as masked with no activation.
                assert_eq!(record.outcome, "masked");
                assert!(record.activation.is_none());
            }
            if cell.scheme == "no-ecc" {
                // Without a code there is nothing to correct or detect.
                assert_ne!(record.outcome, "corrected");
                assert_ne!(record.outcome, "detected");
            }
        }
    }
    // LAEC's SEC-DED corrects activated single-bit strikes...
    let corrected: u64 = report
        .cells
        .iter()
        .filter(|c| c.scheme == "laec")
        .flat_map(|c| c.records.iter())
        .filter(|r| r.outcome == "corrected")
        .count() as u64;
    assert!(corrected > 0, "no corrected lifecycles under laec");
    // ...and no-ecc lets some of the same activations corrupt results.
    assert!(report
        .cells
        .iter()
        .filter(|c| c.scheme == "no-ecc")
        .flat_map(|c| c.records.iter())
        .any(|r| r.outcome == "sdc"));
    // The detection-latency histogram counts exactly the flagged records.
    let flagged: u64 = report
        .detection_latency_histogram()
        .iter()
        .map(|(_, count)| count)
        .sum();
    let detected_or_corrected = report
        .outcome_totals()
        .iter()
        .filter(|(label, _)| *label == "corrected" || *label == "detected")
        .map(|(_, count)| *count)
        .sum::<u64>();
    assert_eq!(flagged, detected_or_corrected);
}

#[test]
fn chrome_trace_export_is_schema_valid() {
    let (_, report) =
        Campaign::new(grid_spec(ExecutionMode::Full)).run_forensic(2, &Obs::disabled());
    let report = report.expect("forensics");
    let value = serde_json::parse(&report.chrome_trace_json()).expect("valid JSON");
    let events = value
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut spans = 0u64;
    for event in events {
        let ph = event
            .get("ph")
            .and_then(|v| v.as_str())
            .expect("every event has a phase");
        assert!(event.get("name").and_then(|v| v.as_str()).is_some());
        assert!(event.get("pid").and_then(|v| v.as_u64()).is_some());
        match ph {
            "X" => {
                spans += 1;
                assert!(event.get("ts").and_then(|v| v.as_u64()).is_some());
                let dur = event.get("dur").and_then(|v| v.as_u64()).expect("dur");
                assert!(dur >= 1, "spans are clamped to visible width");
            }
            "M" | "i" | "s" | "f" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    // One span per cell plus one per activated fault.
    assert_eq!(spans, report.cells.len() as u64 + report.activated());
}

#[test]
fn metrics_dump_carries_the_forensics_sections() {
    let obs = Obs::enabled();
    let (_, report) = Campaign::new(grid_spec(ExecutionMode::Full)).run_forensic(2, &obs);
    let report = report.expect("forensics");
    let dump = obs.dump();
    assert_eq!(dump.counters["forensics.faults"], report.total_faults());
    assert_eq!(dump.counters["forensics.activated"], report.activated());
    assert_eq!(
        dump.histograms["forensics.outcomes"].total(),
        report.total_faults()
    );
    assert_eq!(
        dump.histograms["forensics.outcomes_by_axis"].total(),
        report.total_faults()
    );
    assert_eq!(
        dump.histograms["forensics.detection_latency_cycles"].total(),
        report
            .detection_latency_histogram()
            .iter()
            .map(|(_, c)| c)
            .sum::<u64>()
    );
}

#[test]
fn forensics_incapable_engines_return_none() {
    let spec = CampaignBuilder::smoke()
        .named_workloads(["vector_sum"])
        .schemes([EccScheme::Laec])
        .sampled(16)
        .batch(8)
        .min_samples(8)
        .validate()
        .expect("valid sampled spec");
    let (outcome, forensics) = Campaign::new(spec).run_forensic(2, &Obs::disabled());
    assert!(outcome.sampled().is_some());
    assert!(forensics.is_none());
}

//! Integration tests spanning the whole stack: assembler / kernels →
//! pipeline → memory hierarchy → statistics, under every DL1 ECC scheme.

use laec::core::compare_schemes;
use laec::mem::FaultCampaignConfig;
use laec::pipeline::{EccScheme, PipelineConfig, Simulator};
use laec::workloads::{kernel_suite, kernels, Workload};

/// Every hand-written kernel computes its reference result under every
/// scheme, and all schemes agree on the final architectural state.
#[test]
fn kernels_compute_reference_results_under_every_scheme() {
    let values: Vec<u32> = (0..300).map(|i| i * 7 + 3).collect();
    let queries: Vec<u32> = (0..100).map(|i| i * 31 + 5).collect();
    let table: Vec<u32> = (0..128).map(|i| 1000 + i).collect();
    let coefficients = [1u32, 2, 3, 4, 5];
    let n = 6u32;
    let a: Vec<u32> = (0..n * n).map(|i| i + 1).collect();
    let b: Vec<u32> = (0..n * n).map(|i| 3 * i + 2).collect();

    struct Case {
        program: laec::isa::Program,
        check: Box<dyn Fn(&laec::pipeline::SimResult) -> bool>,
    }
    let out_base = kernels::OUTPUT_BASE;
    let cases = vec![
        Case {
            program: kernels::vector_sum(&values),
            check: {
                let expected = kernels::vector_sum_expected(&values);
                Box::new(move |r| r.registers[4] == expected)
            },
        },
        Case {
            program: kernels::table_lookup(&table, &queries),
            check: {
                let expected = kernels::table_lookup_expected(&table, &queries);
                Box::new(move |r| r.registers[4] == expected)
            },
        },
        Case {
            program: kernels::bit_count(&values),
            check: {
                let expected = kernels::bit_count_expected(&values);
                Box::new(move |r| r.registers[4] == expected)
            },
        },
        Case {
            program: kernels::pointer_chase(64, 200),
            check: {
                let expected = kernels::pointer_chase_expected(64, 200);
                Box::new(move |r| r.registers[4] == expected)
            },
        },
        Case {
            program: kernels::fir_filter(&coefficients, &values),
            check: {
                let expected = kernels::fir_filter_expected(&coefficients, &values);
                Box::new(move |r| r.registers[4] == *expected.last().unwrap())
            },
        },
        Case {
            program: kernels::cache_buster(256),
            check: {
                let expected = kernels::cache_buster_expected(256);
                Box::new(move |r| r.registers[4] == expected)
            },
        },
    ];

    for case in &cases {
        let mut checksums = Vec::new();
        for scheme in [
            EccScheme::NoEcc,
            EccScheme::ExtraCycle,
            EccScheme::ExtraStage,
            EccScheme::Laec,
        ] {
            let result = Simulator::run(case.program.clone(), PipelineConfig::for_scheme(scheme));
            assert!(
                !result.hit_instruction_limit,
                "{} did not terminate under {scheme}",
                case.program.name()
            );
            assert!(
                (case.check)(&result),
                "{} produced a wrong result under {scheme}",
                case.program.name()
            );
            checksums.push(result.memory_checksum);
        }
        assert!(
            checksums.windows(2).all(|w| w[0] == w[1]),
            "{}: schemes disagree on the final memory image",
            case.program.name()
        );
    }
    // The matrix product is checked word by word through the memory image.
    let program = kernels::matrix_multiply(n, &a, &b);
    let expected = kernels::matrix_multiply_expected(n, &a, &b);
    let result = Simulator::run(program, PipelineConfig::laec());
    assert!(!result.hit_instruction_limit);
    assert_eq!(result.registers[4], *expected.last().unwrap());
    let _ = out_base;
}

/// The paper's headline ordering holds for every kernel of the suite:
/// no-ECC ≤ LAEC ≤ Extra-Stage, and LAEC never loses to Extra-Stage.
#[test]
fn laec_never_loses_to_extra_stage_on_any_kernel() {
    for workload in kernel_suite() {
        let comparison = compare_schemes(&workload);
        assert!(comparison.architecturally_equivalent(), "{}", workload.name);
        let no_ecc = comparison.no_ecc.stats.cycles;
        let laec = comparison.laec.stats.cycles;
        let extra_stage = comparison.extra_stage.stats.cycles;
        assert!(
            no_ecc <= laec,
            "{}: ideal {no_ecc} vs LAEC {laec}",
            workload.name
        );
        assert!(
            laec <= extra_stage,
            "{}: LAEC {laec} must not exceed Extra-Stage {extra_stage}",
            workload.name
        );
    }
}

/// A long-running fault campaign on the protected design never loses data on
/// clean lines and flags (rather than silently accepts) anything worse.
#[test]
fn fault_campaign_on_kernels_is_safe() {
    let workload = Workload::from_kernel(kernels::table_lookup(
        &(0..256).map(|i| i * 3).collect::<Vec<u32>>(),
        &(0..400).map(|i| i * 7).collect::<Vec<u32>>(),
    ));
    let clean = Simulator::run(workload.program.clone(), PipelineConfig::laec());
    let faulty = Simulator::run(
        workload.program.clone(),
        PipelineConfig::laec().with_fault_campaign(FaultCampaignConfig::single_bit(0xACE, 100)),
    );
    assert!(faulty.stats.faults_injected > 10);
    if faulty.unrecoverable_errors == 0 {
        assert_eq!(faulty.registers, clean.registers);
        assert_eq!(faulty.memory_checksum, clean.memory_checksum);
    } else {
        assert!(faulty.stats.mem.dl1.ecc.uncorrectable() > 0);
    }
}

/// The write-buffer rules of §III.B are observable end to end: a store
/// followed by a load of the same address returns the stored value under
/// every scheme, and store-heavy code reports buffer backpressure.
#[test]
fn write_buffer_semantics_hold_across_schemes() {
    let program = laec::isa::Program::assemble(
        r#"
            addi r1, r0, 0x900
            addi r2, r0, 200
        loop:
            st   r2, [r1 + 0]
            ld   r3, [r1 + 0]
            add  r4, r4, r3
            st   r3, [r1 + 4]
            addi r1, r1, 8
            subi r2, r2, 1
            bne  r2, r0, loop
            halt
        "#,
    )
    .expect("assembles");
    for scheme in EccScheme::figure8_set() {
        let result = Simulator::run(program.clone(), PipelineConfig::for_scheme(scheme));
        assert_eq!(result.registers[4], (1..=200).sum::<u32>(), "{scheme}");
        assert!(result.stats.write_buffer_drain_stall_cycles > 0, "{scheme}");
    }
}

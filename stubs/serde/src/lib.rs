//! Offline stand-in for `serde`.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal serialization framework under the `serde`
//! name: a [`Serialize`] trait driving a streaming JSON writer
//! ([`Serializer`]), plus derive macros for structs with named fields and
//! fieldless enums.  The sibling `serde_json` stub exposes
//! `to_string`/`to_string_pretty` on top of it.
//!
//! [`Deserialize`] is a marker trait only: nothing in this workspace parses
//! JSON back, and keeping the derive accepted lets the experiment structs
//! stay source-compatible with upstream serde.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A value that can be written to the JSON [`Serializer`].
pub trait Serialize {
    /// Writes `self` as one JSON value.
    fn serialize(&self, serializer: &mut Serializer);
}

/// Marker for types whose upstream-serde derive requested `Deserialize`.
///
/// No decoding support is provided (or needed) in this offline subset.
pub trait Deserialize: Sized {}

/// A streaming JSON writer with optional pretty-printing.
#[derive(Debug)]
pub struct Serializer {
    out: String,
    /// One entry per open container: `true` once the container has a child
    /// (so the next child needs a `,` separator).
    stack: Vec<bool>,
    /// Set between an object key and its value so the value emits no comma.
    after_key: bool,
    pretty: bool,
}

impl Serializer {
    /// A compact (single-line) serializer.
    #[must_use]
    pub fn compact() -> Self {
        Serializer {
            out: String::new(),
            stack: Vec::new(),
            after_key: false,
            pretty: false,
        }
    }

    /// A pretty-printing serializer (two-space indent).
    #[must_use]
    pub fn pretty() -> Self {
        Serializer {
            pretty: true,
            ..Serializer::compact()
        }
    }

    /// Consumes the serializer and returns the accumulated JSON text.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }

    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    /// Emits the separator/indentation owed before any new value.
    fn prelude(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        let had_child = match self.stack.last_mut() {
            Some(top) => std::mem::replace(top, true),
            None => return,
        };
        if had_child {
            self.out.push(',');
        }
        if self.pretty {
            self.newline_indent();
        }
    }

    fn close(&mut self, delimiter: char) {
        let had_child = self.stack.pop().unwrap_or(false);
        if self.pretty && had_child {
            self.newline_indent();
        }
        self.out.push(delimiter);
    }

    /// Opens a JSON object.
    pub fn begin_object(&mut self) {
        self.prelude();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost JSON object.
    pub fn end_object(&mut self) {
        self.close('}');
    }

    /// Opens a JSON array.
    pub fn begin_array(&mut self) {
        self.prelude();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost JSON array.
    pub fn end_array(&mut self) {
        self.close(']');
    }

    /// Writes one `"key": value` object member.
    pub fn field<T: Serialize + ?Sized>(&mut self, key: &str, value: &T) {
        self.prelude();
        write_escaped(&mut self.out, key);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
        self.after_key = true;
        value.serialize(self);
    }

    /// Writes one array element.
    pub fn element<T: Serialize + ?Sized>(&mut self, value: &T) {
        value.serialize(self);
    }

    /// Writes a raw literal token (already valid JSON).
    fn literal(&mut self, text: &str) {
        self.prelude();
        self.out.push_str(text);
    }

    /// Writes a JSON string value.
    pub fn write_str(&mut self, value: &str) {
        self.prelude();
        write_escaped(&mut self.out, value);
    }
}

fn write_escaped(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_display {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, serializer: &mut Serializer) {
                serializer.literal(&self.to_string());
            }
        }
    )*};
}
impl_serialize_display!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, serializer: &mut Serializer) {
                if self.is_finite() {
                    // Shortest round-trip formatting; deterministic for a
                    // given bit pattern, which the campaign determinism
                    // tests rely on.
                    let mut text = self.to_string();
                    if !text.contains('.') && !text.contains('e') {
                        text.push_str(".0");
                    }
                    serializer.literal(&text);
                } else {
                    serializer.literal("null");
                }
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for str {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.write_str(self);
    }
}

impl Serialize for String {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.write_str(self);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, serializer: &mut Serializer) {
        self.as_slice().serialize(serializer);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, serializer: &mut Serializer) {
        serializer.begin_array();
        for element in self {
            serializer.element(element);
        }
        serializer.end_array();
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, serializer: &mut Serializer) {
        self.as_slice().serialize(serializer);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, serializer: &mut Serializer) {
        match self {
            Some(value) => value.serialize(serializer),
            None => serializer.literal("null"),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, serializer: &mut Serializer) {
        (**self).serialize(serializer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_arrays_and_escapes() {
        let mut s = Serializer::compact();
        vec![1u32, 2, 3].serialize(&mut s);
        assert_eq!(s.finish(), "[1,2,3]");

        let mut s = Serializer::compact();
        "a\"b\nc".serialize(&mut s);
        assert_eq!(s.finish(), "\"a\\\"b\\nc\"");

        let mut s = Serializer::compact();
        1.5f64.serialize(&mut s);
        assert_eq!(s.finish(), "1.5");

        let mut s = Serializer::compact();
        2.0f64.serialize(&mut s);
        assert_eq!(s.finish(), "2.0");
    }

    #[test]
    fn objects_nest_and_separate() {
        let mut s = Serializer::compact();
        s.begin_object();
        s.field("a", &1u32);
        s.field("b", &vec![true, false]);
        s.end_object();
        assert_eq!(s.finish(), "{\"a\":1,\"b\":[true,false]}");
    }

    #[test]
    fn pretty_output_indents() {
        let mut s = Serializer::pretty();
        s.begin_object();
        s.field("a", &1u32);
        s.end_object();
        assert_eq!(s.finish(), "{\n  \"a\": 1\n}");
    }
}

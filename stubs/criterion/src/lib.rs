//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access to crates.io, so this crate
//! vendors the subset of the Criterion API the `laec-bench` targets use
//! (`criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`black_box`]) behind a small wall-clock harness:
//! each benchmark is warmed up once, timed for a fixed number of samples,
//! and reported as `name ... median time/iter`.
//!
//! No statistical analysis, HTML reports or command-line filtering — the CI
//! gate is `cargo bench --no-run` (compile only), and local `cargo bench`
//! gives indicative numbers.
//!
//! When the `LAEC_BENCH_DIR` environment variable is set, each bench binary
//! additionally writes a machine-readable artifact
//! `$LAEC_BENCH_DIR/BENCH_<target>.json` on exit — one record per benchmark
//! with its median and min/max nanoseconds per iteration — so CI can upload
//! benchmark results without scraping stdout.

#![forbid(unsafe_code)]

use std::sync::Mutex;
use std::time::Instant;

pub use std::hint::black_box;

/// Entry point handed to each benchmark target function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), 20, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Ends the group (upstream flushes reports here; the stub needs no
    /// cleanup, the method exists for API compatibility).
    pub fn finish(self) {}
}

/// Timing driver passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<u128>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording one wall-clock sample per configured
    /// iteration.  The routine's output is passed through [`black_box`] so
    /// the optimizer cannot delete the measured work.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_nanos());
        }
    }
}

/// One finished benchmark, as recorded for the `BENCH_*.json` artifact.
#[derive(Debug, Clone)]
struct BenchRecord {
    label: String,
    samples: usize,
    median_ns: u128,
    min_ns: u128,
    max_ns: u128,
}

/// Every benchmark the process has run, in execution order.  The artifact
/// writer drains it once, at the end of `criterion_main!`.
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label} ... no samples");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    println!("  {label} ... {} ns/iter (median of {sample_size})", median);
    RESULTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(BenchRecord {
            label: label.to_string(),
            samples: bencher.samples.len(),
            median_ns: median,
            min_ns: bencher.samples[0],
            max_ns: bencher.samples[bencher.samples.len() - 1],
        });
}

/// Writes the accumulated results as `$LAEC_BENCH_DIR/BENCH_<target>.json`
/// (no-op when the variable is unset).  Called by `criterion_main!` with
/// the bench target's crate name; not part of the upstream criterion API.
pub fn write_artifact(target: &str) {
    let Ok(dir) = std::env::var("LAEC_BENCH_DIR") else {
        return;
    };
    let results = RESULTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut json = String::from("{\n  \"schema\": 1,\n");
    json.push_str(&format!("  \"target\": \"{}\",\n", escape(target)));
    json.push_str("  \"results\": [");
    for (index, record) in results.iter().enumerate() {
        if index > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "\n    {{\"label\": \"{}\", \"samples\": {}, \"median_ns\": {}, \
             \"min_ns\": {}, \"max_ns\": {}}}",
            escape(&record.label),
            record.samples,
            record.median_ns,
            record.min_ns,
            record.max_ns,
        ));
    }
    if !results.is_empty() {
        json.push('\n');
        json.push_str("  ");
    }
    json.push_str("]\n}\n");
    let path = std::path::Path::new(&dir).join(format!("BENCH_{target}.json"));
    if let Err(error) = std::fs::write(&path, json) {
        eprintln!("cannot write bench artifact {}: {error}", path.display());
    }
}

fn escape(text: &str) -> String {
    text.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion::criterion_main!`.
///
/// On exit the stub's `main` also writes the `BENCH_<target>.json` artifact
/// when `LAEC_BENCH_DIR` is set; `CARGO_CRATE_NAME` expands to the bench
/// target's own crate name because the macro body is expanded there.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_artifact(env!("CARGO_CRATE_NAME"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_drive_the_closure() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}

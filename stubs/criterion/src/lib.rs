//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access to crates.io, so this crate
//! vendors the subset of the Criterion API the `laec-bench` targets use
//! (`criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`black_box`]) behind a small wall-clock harness:
//! each benchmark is warmed up once, timed for a fixed number of samples,
//! and reported as `name ... median time/iter`.
//!
//! No statistical analysis, HTML reports or command-line filtering — the CI
//! gate is `cargo bench --no-run` (compile only), and local `cargo bench`
//! gives indicative numbers.

#![forbid(unsafe_code)]

use std::time::Instant;

pub use std::hint::black_box;

/// Entry point handed to each benchmark target function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), 20, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Ends the group (upstream flushes reports here; the stub needs no
    /// cleanup, the method exists for API compatibility).
    pub fn finish(self) {}
}

/// Timing driver passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<u128>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording one wall-clock sample per configured
    /// iteration.  The routine's output is passed through [`black_box`] so
    /// the optimizer cannot delete the measured work.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_nanos());
        }
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label} ... no samples");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    println!("  {label} ... {} ns/iter (median of {sample_size})", median);
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_drive_the_closure() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}

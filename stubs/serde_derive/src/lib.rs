//! Offline `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline).  Supports the two shapes this workspace
//! uses: non-generic structs with named fields, and fieldless enums
//! (serialized as the variant name).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (JSON object of the named fields, or variant
/// name for a fieldless enum).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match item.shape {
        Shape::Struct(fields) => {
            let mut lines = String::from("serializer.begin_object();\n");
            for field in fields {
                lines.push_str(&format!("serializer.field(\"{field}\", &self.{field});\n"));
            }
            lines.push_str("serializer.end_object();");
            lines
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for variant in &variants {
                arms.push_str(&format!("{0}::{1} => \"{1}\",\n", item.name, variant));
            }
            format!("let name = match self {{ {arms} }};\nserializer.write_str(name);")
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n\
         fn serialize(&self, serializer: &mut ::serde::Serializer) {{\n{body}\n}}\n}}",
        item.name
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Derives the marker trait `serde::Deserialize` (decoding is not supported
/// in the offline subset; the derive keeps upstream-serde source compatible).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("generated Deserialize impl must parse")
}

enum Shape {
    /// Named field idents, in declaration order.
    Struct(Vec<String>),
    /// Fieldless variant idents, in declaration order.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes and visibility; find `struct`/`enum` + name.
    let (name, is_enum) = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the bracket group that follows.
                tokens.next();
            }
            Some(TokenTree::Ident(ident)) => {
                let text = ident.to_string();
                match text.as_str() {
                    "pub" => {
                        // Consume a `(crate)`-style restriction if present.
                        if matches!(
                            tokens.peek(),
                            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                        ) {
                            tokens.next();
                        }
                    }
                    "struct" | "enum" => match tokens.next() {
                        Some(TokenTree::Ident(name)) => break (name.to_string(), text == "enum"),
                        other => panic!("expected item name after `{text}`, found {other:?}"),
                    },
                    other => panic!("unsupported token before item keyword: `{other}`"),
                }
            }
            other => panic!("unsupported derive input shape: {other:?}"),
        }
    };

    // Find the brace-delimited body; generics are unsupported.
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("the offline serde_derive stub does not support generic items")
            }
            Some(_) => continue,
            None => panic!("expected a braced item body"),
        }
    };

    let shape = if is_enum {
        Shape::Enum(parse_enum_variants(body))
    } else {
        Shape::Struct(parse_struct_fields(body))
    };
    Item { name, shape }
}

fn parse_struct_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip per-field attributes and visibility.
        let field = loop {
            match tokens.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                    if matches!(
                        tokens.peek(),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                    ) {
                        tokens.next();
                    }
                }
                Some(TokenTree::Ident(ident)) => break ident.to_string(),
                Some(other) => panic!("unsupported token in struct body: `{other}`"),
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{field}`, found {other:?}"),
        }
        fields.push(field);
        // Consume the type, honouring angle-bracket nesting so commas inside
        // e.g. `HashMap<K, V>` do not end the field early.
        let mut angle_depth = 0i32;
        loop {
            match tokens.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
            }
        }
    }
}

fn parse_enum_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        match tokens.next() {
            None => return variants,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
            }
            Some(TokenTree::Ident(ident)) => {
                if matches!(tokens.peek(), Some(TokenTree::Group(_))) {
                    panic!(
                        "the offline serde_derive stub only supports fieldless enum variants \
                         (variant `{ident}` has fields)"
                    );
                }
                variants.push(ident.to_string());
                // Skip an optional `= discriminant` and the trailing comma.
                loop {
                    match tokens.next() {
                        None => return variants,
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                        Some(_) => {}
                    }
                }
            }
            Some(other) => panic!("unsupported token in enum body: `{other}`"),
        }
    }
}

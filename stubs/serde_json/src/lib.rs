//! Offline stand-in for `serde_json`: serialization only.
//!
//! Backed by the streaming JSON writer in the vendored `serde` subset.
//! Parsing (`from_str`) is intentionally absent — nothing in this workspace
//! decodes JSON, and the offline `serde::Deserialize` is a marker trait.

#![forbid(unsafe_code)]

use serde::{Serialize, Serializer};

/// Serialization error.
///
/// The offline writer is infallible (it writes to a `String`), so this type
/// exists only to keep call sites source-compatible with upstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Never fails in the offline subset; the `Result` mirrors upstream.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut serializer = Serializer::compact();
    value.serialize(&mut serializer);
    Ok(serializer.finish())
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails in the offline subset; the `Result` mirrors upstream.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut serializer = Serializer::pretty();
    value.serialize(&mut serializer);
    Ok(serializer.finish())
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Sample {
        name: String,
        values: Vec<f64>,
        flag: bool,
        count: Option<u64>,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq, Eq)]
    enum Kind {
        Alpha,
        Beta,
    }

    #[test]
    fn derived_struct_round_trips_to_expected_text() {
        let sample = Sample {
            name: "laec".to_string(),
            values: vec![1.0, 2.5],
            flag: true,
            count: None,
        };
        assert_eq!(
            super::to_string(&sample).unwrap(),
            "{\"name\":\"laec\",\"values\":[1.0,2.5],\"flag\":true,\"count\":null}"
        );
    }

    #[test]
    fn derived_enum_serializes_as_variant_name() {
        assert_eq!(super::to_string(&Kind::Alpha).unwrap(), "\"Alpha\"");
        assert_eq!(super::to_string(&Kind::Beta).unwrap(), "\"Beta\"");
    }

    #[test]
    fn pretty_output_is_indented() {
        let sample = Sample {
            name: "x".to_string(),
            values: vec![],
            flag: false,
            count: Some(3),
        };
        let pretty = super::to_string_pretty(&sample).unwrap();
        assert!(pretty.contains("\n  \"name\": \"x\""), "{pretty}");
    }
}

//! Offline stand-in for `serde_json`.
//!
//! Serialization is backed by the streaming JSON writer in the vendored
//! `serde` subset.  Parsing is provided through a self-describing [`Value`]
//! tree ([`parse`] / [`Value::from_str`]) rather than derive-based
//! deserialization: the offline `serde::Deserialize` is a marker trait, so
//! consumers that decode JSON (e.g. the campaign spec loader) walk a
//! [`Value`] explicitly.

#![forbid(unsafe_code)]

use std::str::FromStr;

use serde::{Serialize, Serializer};

/// Serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn parse(offset: usize, message: impl Into<String>) -> Self {
        Error(format!("at byte {offset}: {}", message.into()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Value tree + parser
// ---------------------------------------------------------------------------

/// A parsed JSON document.
///
/// Numbers keep their literal text so integer precision is never lost to an
/// intermediate `f64` (campaign seeds are full-range `u64`s); object members
/// preserve their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A number, stored as its literal token.
    Number(String),
    /// A string (escapes already resolved).
    String(String),
    /// An array of values.
    Array(Vec<Value>),
    /// An object, as `(key, value)` members in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (`None` for other shapes or missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// `true` for JSON `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(value) => Some(*value),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(text) => Some(text),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a number with an exact `u64` value.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(text) => text.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(elements) => Some(elements),
            _ => None,
        }
    }

    /// The members in source order, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }
}

impl FromStr for Value {
    type Err = Error;

    fn from_str(text: &str) -> Result<Self, Error> {
        parse(text)
    }
}

/// Parses one JSON document (surrounding whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns an [`Error`] naming the byte offset of the first syntax problem.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::parse(parser.pos, "trailing characters"));
    }
    Ok(value)
}

/// Hard ceiling on array/object nesting: a corrupt or hostile document
/// must come back as a parse [`Error`], not blow the call stack (upstream
/// serde_json guards recursion the same way).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(
                self.pos,
                format!("expected `{}`", byte as char),
            ))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::parse(self.pos, format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::parse(
                self.pos,
                format!("unexpected character `{}`", other as char),
            )),
            None => Err(Error::parse(self.pos, "unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(Error::parse(self.pos, "expected digits"));
        }
        // RFC 8259: no leading zeros — stay byte-compatible with every
        // external JSON tool a committed spec may meet.
        if self.bytes[digits_from] == b'0' && self.pos - digits_from > 1 {
            return Err(Error::parse(digits_from, "leading zeros are not allowed"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(Error::parse(self.pos, "expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(Error::parse(self.pos, "expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            // laec-lint: allow(panic-in-library) -- the slice was matched
            // byte-by-byte against `[-0-9.eE+]` just above, so it is ASCII
            // and infallibly valid UTF-8.
            .expect("number tokens are ASCII")
            .to_string();
        Ok(Value::Number(text))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::parse(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex_unit()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require the paired low half.
                                self.expect_byte(b'\\')?;
                                self.expect_byte(b'u')?;
                                let low = self.hex_unit()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::parse(self.pos, "unpaired surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(
                                c.ok_or_else(|| Error::parse(self.pos, "invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::parse(
                                self.pos,
                                format!("invalid escape `\\{}`", other as char),
                            ));
                        }
                    }
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar from the source text.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::parse(self.pos, "invalid UTF-8"))?;
                    // laec-lint: allow(panic-in-library) -- `peek()` returned
                    // `Some`, so the remainder is non-empty and validated
                    // UTF-8: `chars().next()` cannot be `None`.
                    let c = rest.chars().next().expect("peek saw a byte");
                    if (c as u32) < 0x20 {
                        return Err(Error::parse(self.pos, "unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex_unit(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::parse(self.pos, "truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::parse(self.pos, "invalid unicode escape"))?;
        let unit = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::parse(self.pos, "invalid unicode escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::parse(
                self.pos,
                format!("structure nesting exceeds {MAX_DEPTH} levels"),
            ));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect_byte(b'[')?;
        self.enter()?;
        let mut elements = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(elements));
        }
        loop {
            self.skip_whitespace();
            elements.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(elements));
                }
                _ => return Err(Error::parse(self.pos, "expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect_byte(b'{')?;
        self.enter()?;
        let mut members: Vec<(String, Value)> = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key_at = self.pos;
            let key = self.string()?;
            // A duplicate key is almost always a misplaced edit; silently
            // keeping either copy would run a different document than the
            // one the user believes they wrote.
            if members.iter().any(|(name, _)| *name == key) {
                return Err(Error::parse(key_at, format!("duplicate key `{key}`")));
            }
            self.skip_whitespace();
            self.expect_byte(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(Error::parse(self.pos, "expected `,` or `}`")),
            }
        }
    }
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Never fails in the offline subset; the `Result` mirrors upstream.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut serializer = Serializer::compact();
    value.serialize(&mut serializer);
    Ok(serializer.finish())
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails in the offline subset; the `Result` mirrors upstream.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut serializer = Serializer::pretty();
    value.serialize(&mut serializer);
    Ok(serializer.finish())
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Sample {
        name: String,
        values: Vec<f64>,
        flag: bool,
        count: Option<u64>,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq, Eq)]
    enum Kind {
        Alpha,
        Beta,
    }

    #[test]
    fn derived_struct_round_trips_to_expected_text() {
        let sample = Sample {
            name: "laec".to_string(),
            values: vec![1.0, 2.5],
            flag: true,
            count: None,
        };
        assert_eq!(
            super::to_string(&sample).unwrap(),
            "{\"name\":\"laec\",\"values\":[1.0,2.5],\"flag\":true,\"count\":null}"
        );
    }

    #[test]
    fn derived_enum_serializes_as_variant_name() {
        assert_eq!(super::to_string(&Kind::Alpha).unwrap(), "\"Alpha\"");
        assert_eq!(super::to_string(&Kind::Beta).unwrap(), "\"Beta\"");
    }

    #[test]
    fn parser_round_trips_serializer_output() {
        let sample = Sample {
            name: "laec \"quoted\"\n".to_string(),
            values: vec![1.0, 2.5, -3.25e2],
            flag: true,
            count: Some(u64::MAX),
        };
        for text in [
            super::to_string(&sample).unwrap(),
            super::to_string_pretty(&sample).unwrap(),
        ] {
            let value = super::parse(&text).expect("serializer output parses");
            assert_eq!(
                value.get("name").and_then(super::Value::as_str),
                Some("laec \"quoted\"\n")
            );
            assert_eq!(
                value.get("count").and_then(super::Value::as_u64),
                Some(u64::MAX),
                "u64 precision must survive (not round through f64)"
            );
            let values = value
                .get("values")
                .and_then(super::Value::as_array)
                .unwrap();
            assert_eq!(values[2].as_f64(), Some(-325.0));
            assert_eq!(
                value.get("flag").and_then(super::Value::as_bool),
                Some(true)
            );
        }
    }

    #[test]
    fn parser_accepts_standard_json_shapes() {
        let value =
            super::parse("  { \"a\" : [ null , true , \"\\u0041\\ud83d\\ude00\" ] , \"b\" : {} } ")
                .unwrap();
        let a = value.get("a").and_then(super::Value::as_array).unwrap();
        assert!(a[0].is_null());
        assert_eq!(a[2].as_str(), Some("A\u{1F600}"));
        assert_eq!(
            value.get("b").and_then(super::Value::as_object),
            Some(&[][..])
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{'a':1}",
            "[1] trailing",
            "\"\\q\"",
            "\"\\ud800\"",
            "01x",
            // RFC 8259 leading zeros — external tools reject these too.
            "01",
            "-01",
            "[0123]",
            // Duplicate keys silently drop one of the user's two values.
            "{\"a\":1,\"a\":2}",
        ] {
            assert!(super::parse(bad).is_err(), "`{bad}` must not parse");
        }
        // Lone zeros (and 0-prefixed fractions) remain fine.
        assert!(super::parse("0").is_ok());
        assert!(super::parse("[0, -0.5, 0.125e2]").is_ok());
    }

    #[test]
    fn parser_bounds_nesting_depth_instead_of_overflowing_the_stack() {
        let mut deep = "[".repeat(200_000);
        deep.push_str(&"]".repeat(200_000));
        assert!(super::parse(&deep).is_err(), "must error, not crash");
        // 100 levels is comfortably inside the limit.
        let mut fine = "[".repeat(100);
        fine.push('1');
        fine.push_str(&"]".repeat(100));
        assert!(super::parse(&fine).is_ok());
    }

    #[test]
    fn pretty_output_is_indented() {
        let sample = Sample {
            name: "x".to_string(),
            values: vec![],
            flag: false,
            count: Some(3),
        };
        let pretty = super::to_string_pretty(&sample).unwrap();
        assert!(pretty.contains("\n  \"name\": \"x\""), "{pretty}");
    }
}

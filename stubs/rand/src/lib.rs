//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the *subset* of the `rand 0.8` API the workloads
//! generator uses: [`SeedableRng::seed_from_u64`], [`Rng::gen_bool`],
//! [`Rng::gen_range`] over integer ranges, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator only requires *seed-determinism*, not bit-compatibility
//! with upstream `StdRng`; the stream here is SplitMix64, which passes the
//! statistical needs of the profile-calibrated workload mix (the calibration
//! tests in `laec-workloads` and `laec-core` run against this stream).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Draws a value in `range` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                // Two's-complement arithmetic in u64 so wide spans (e.g.
                // -100i8..100) neither truncate the offset nor overflow the
                // start + offset addition.
                ((range.start as i64 as u64).wrapping_add(rng.next_u64() % span)) as $t
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 uniform mantissa bits, exactly as upstream's `gen_bool`.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Draws a value uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    ///
    /// Not the upstream ChaCha12-based `StdRng` stream — this workspace only
    /// relies on determinism and uniformity, both of which SplitMix64
    /// provides with full 2^64 period.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let draw = |rng: &mut StdRng| {
            (0..32)
                .map(|_| rng.gen_range(0..1000u32))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(&mut a), draw(&mut b));
        assert_ne!(draw(&mut a), draw(&mut c));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_800..3_200).contains(&hits), "{hits}");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..256 {
            let v = rng.gen_range(0..8u16);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn signed_gen_range_handles_wide_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut below = 0usize;
        for _ in 0..512 {
            let v = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&v), "{v}");
            if v < 0 {
                below += 1;
            }
        }
        // Both halves of the range must be reachable.
        assert!(below > 100 && below < 412, "{below}");
        let w = rng.gen_range(i64::MIN..0);
        assert!(w < 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut values: Vec<u32> = (0..64).collect();
        values.shuffle(&mut rng);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(values, sorted, "seeded shuffle should move something");
    }
}

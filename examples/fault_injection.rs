//! Soft-error campaign on the matrix-multiply kernel: compares the protected
//! write-back DL1 (LAEC + SECDED), the production write-through + parity
//! configuration, and an unprotected DL1.
//!
//! Run with `cargo run --example fault_injection`.

use laec::core::{fault_campaign, render_fault_campaign};
use laec::mem::FaultCampaignConfig;
use laec::pipeline::{PipelineConfig, Simulator};
use laec::workloads::kernels;

fn main() {
    // The harness campaign over the vector-sum kernel (three designs side by
    // side)...
    println!("{}", render_fault_campaign(&fault_campaign(40, 0x5EED)));

    // ...and a directed campaign on matrix multiply, checking the numerical
    // result survives the strikes.
    let n = 8u32;
    let a: Vec<u32> = (0..n * n).map(|i| i + 1).collect();
    let b: Vec<u32> = (0..n * n).map(|i| 2 * i + 3).collect();
    let expected = kernels::matrix_multiply_expected(n, &a, &b);
    let program = kernels::matrix_multiply(n, &a, &b);

    let clean = Simulator::run(program.clone(), PipelineConfig::laec());
    let faulty = Simulator::run(
        program,
        PipelineConfig::laec().with_fault_campaign(FaultCampaignConfig::single_bit(0xD1E, 500)),
    );

    println!("matrix multiply under injection:");
    println!("  faults injected      : {}", faulty.stats.faults_injected);
    println!(
        "  corrected by SECDED  : {}",
        faulty.stats.mem.dl1.ecc.corrected()
    );
    println!("  unrecoverable        : {}", faulty.unrecoverable_errors);
    println!(
        "  product intact       : {}",
        faulty.memory_checksum == clean.memory_checksum
    );
    println!(
        "  C[0][0] expected {} (clean run reproduces the reference: {})",
        expected[0],
        clean.memory_checksum
            == Simulator::run(
                kernels::matrix_multiply(n, &a, &b),
                PipelineConfig::no_ecc()
            )
            .memory_checksum
    );
}

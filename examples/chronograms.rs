//! Prints the pipeline chronograms of the paper's Figures 2–5 and 7:
//! the same two-instruction load / consumer example under every DL1 ECC
//! deployment scheme.
//!
//! Run with `cargo run --example chronograms`.

use laec::isa::Program;
use laec::pipeline::{EccScheme, PipelineConfig, Simulator};

fn trace(title: &str, scheme: EccScheme, source: &str) {
    let program = Program::assemble(source)
        .expect("figure program assembles")
        .with_data_word(0x100, 7);
    let mut simulator = Simulator::new(program, PipelineConfig::for_scheme(scheme).with_trace(8));
    simulator.prefill_dl1(&[0x100]);
    let result = simulator.execute();
    println!("== {title} ==\n{}", result.chronogram.render());
}

fn main() {
    let dependent = r#"
        addi r1, r0, 0x100
        nop
        nop
        add  r9, r4, r6      # unrelated instruction before the load
        ld   r3, [r1 + 0]    # r3 = load(r1)
        add  r5, r3, r4      # r5 = r3 + r4 (distance-1 consumer)
        halt
    "#;
    let independent = r#"
        addi r1, r0, 0x100
        nop
        nop
        add  r9, r4, r6
        ld   r3, [r1 + 0]
        add  r5, r6, r4      # independent instruction after the load
        halt
    "#;
    let producer_before = r#"
        addi r1, r0, 0x100
        nop
        nop
        addi r1, r1, 0       # r1 = r4 + r6 in the paper: the address producer
        ld   r3, [r1 + 0]
        add  r5, r3, r4
        halt
    "#;

    trace(
        "Figure 2: no-ECC baseline, dependent consumer",
        EccScheme::NoEcc,
        dependent,
    );
    trace(
        "Figure 3: Extra Cycle, dependent consumer",
        EccScheme::ExtraCycle,
        dependent,
    );
    trace(
        "Figure 4: Extra Stage, dependent consumer",
        EccScheme::ExtraStage,
        dependent,
    );
    trace(
        "Figure 5: Extra Stage, no dependency",
        EccScheme::ExtraStage,
        independent,
    );
    trace(
        "Figure 7a: LAEC, look-ahead performed",
        EccScheme::Laec,
        dependent,
    );
    trace(
        "Figure 7b: LAEC, blocked by the address producer",
        EccScheme::Laec,
        producer_before,
    );
}

//! Quickstart: assemble a tiny program, run it under LAEC and the ideal
//! no-ECC baseline, and print what the DL1 ECC deployment cost.
//!
//! Run with `cargo run --example quickstart`.

use laec::isa::Program;
use laec::pipeline::{EccScheme, PipelineConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dot product over two 64-element vectors kept in the DL1.
    let program = Program::assemble(
        r#"
            addi r1, r0, 0x1000     # &a
            addi r2, r0, 0x2000     # &b
            addi r3, r0, 64         # length
            addi r4, r0, 0          # accumulator
        loop:
            ld   r5, [r1 + 0]
            ld   r6, [r2 + 0]
            mul  r5, r5, r6
            add  r4, r4, r5
            addi r1, r1, 4
            addi r2, r2, 4
            subi r3, r3, 1
            bne  r3, r0, loop
            addi r7, r0, 0x3000
            st   r4, [r7 + 0]
            halt
        "#,
    )?
    .with_data_block(0x1000, &(1..=64).collect::<Vec<u32>>())
    .with_data_block(0x2000, &(1..=64).map(|i| 2 * i).collect::<Vec<u32>>());

    println!("== program ==\n{program}");

    let mut results = Vec::new();
    for scheme in EccScheme::figure8_set() {
        let result = Simulator::run(program.clone(), PipelineConfig::for_scheme(scheme));
        println!(
            "{scheme:<12} cycles {:>6}  CPI {:.3}  dot-product = {}",
            result.stats.cycles,
            result.stats.cpi(),
            result.registers[4]
        );
        results.push((scheme, result));
    }

    let baseline = results[0].1.stats.cycles as f64;
    println!("\nexecution-time increase vs the no-ECC baseline:");
    for (scheme, result) in &results[1..] {
        println!(
            "  {scheme:<12} +{:.2}%  (look-ahead covered {:.0}% of loads)",
            100.0 * (result.stats.cycles as f64 / baseline - 1.0),
            100.0 * result.stats.lookahead_rate()
        );
    }
    Ok(())
}

//! Reproduces Table II and Figure 8 of the paper over the EEMBC-Automotive-
//! like suite and prints the §IV.A summary claims.
//!
//! Run with `cargo run --release --example reproduce_figure8`.

use laec::core::{characterization, figure8, render_figure8, render_table2};
use laec::pipeline::EccScheme;
use laec::workloads::GeneratorConfig;

fn main() {
    let shape = GeneratorConfig::evaluation();

    println!("{}", render_table2(&characterization(&shape)));
    let figure = figure8(&shape);
    println!("{}", render_figure8(&figure));

    println!("paper vs measured (average execution-time increase):");
    println!(
        "  Extra Cycle : paper ~17%   measured {:>5.1}%",
        figure.average_increase_pct(EccScheme::ExtraCycle)
    );
    println!(
        "  Extra Stage : paper ~10%   measured {:>5.1}%",
        figure.average_increase_pct(EccScheme::ExtraStage)
    );
    println!(
        "  LAEC        : paper <4%    measured {:>5.1}%",
        figure.average_increase_pct(EccScheme::Laec)
    );
    println!(
        "  LAEC gain   : paper ~6% vs Extra Stage, ~13% vs Extra Cycle; measured {:.1}% / {:.1}%",
        figure.laec_gain_over_extra_stage_pct(),
        figure.laec_gain_over_extra_cycle_pct()
    );
    println!(
        "  benchmarks where LAEC ~= Extra Stage (paper: aifftr, aiifft, bitmnp, matrix): {:?}",
        figure.benchmarks_where_laec_matches_extra_stage(0.015)
    );
}

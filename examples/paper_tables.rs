//! Prints Table I (commercial processors), Table II (workload
//! characterisation), the energy discussion, the LAEC hazard breakdown and
//! the WT-vs-WB motivation ablation.
//!
//! Run with `cargo run --release --example paper_tables`.

use laec::core::{
    characterization, energy_overheads, hazard_breakdown, render_energy, render_hazard_breakdown,
    render_table1, render_table2, render_wt_vs_wb, wt_vs_wb, EnergyModel,
};
use laec::workloads::GeneratorConfig;

fn main() {
    let shape = GeneratorConfig::evaluation();
    println!("{}", render_table1());
    println!("{}", render_table2(&characterization(&shape)));
    println!(
        "{}",
        render_energy(&energy_overheads(&shape, &EnergyModel::default_65nm()))
    );
    println!("{}", render_hazard_breakdown(&hazard_breakdown(&shape)));
    println!("{}", render_wt_vs_wb(&wt_vs_wb()));
}

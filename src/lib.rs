//! Facade crate for the LAEC reproduction.
//!
//! Re-exports the whole workspace under one roof so examples, integration
//! tests and downstream users can depend on a single crate:
//!
//! * [`ecc`] — parity / Hamming / Hsiao SEC-DED codes and fault injection,
//! * [`isa`] — the embedded RISC instruction set, assembler and programs,
//! * [`mem`] — the NGMP-like memory hierarchy (DL1, write buffer, bus, L2),
//! * [`pipeline`] — the cycle-accurate in-order pipeline with the No-ECC,
//!   Extra-Cycle, Extra-Stage, Speculate-and-Flush and LAEC schemes,
//! * [`trace`] — access-stream capture & replay (record a workload once,
//!   replay fault campaigns against the memory hierarchy only),
//! * [`workloads`] — EEMBC-Automotive-like workloads, hand-written kernels
//!   and shared-memory multi-core kernels,
//! * [`smp`] — the N-core system model: private MESI-coherent DL1s snooping
//!   a shared bus in front of the shared L2,
//! * [`core`] — experiment harness reproducing every table and figure,
//!   including the trace-backed and multi-core campaign engines,
//! * [`obs`] — deterministic instrumentation: the metrics registry,
//!   phase-timing spans and progress streaming behind
//!   `laec-cli campaign --metrics-out/--progress`,
//! * [`fleet`] — the campaign fleet service: persistent job queue,
//!   spec-addressed result store and work-stealing multi-process sharding
//!   behind `laec-cli serve`/`submit`/`fleet`.
//!
//! # Quickstart
//!
//! ```
//! use laec::pipeline::{EccScheme, PipelineConfig, Simulator};
//! use laec::workloads::kernels;
//!
//! let program = kernels::vector_sum(&[1, 2, 3, 4, 5]);
//! let result = Simulator::run(program, PipelineConfig::for_scheme(EccScheme::Laec));
//! assert_eq!(result.registers[4], 15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The one-stop import for driving campaigns through the unified API.
///
/// Brings in the serializable [`CampaignSpec`](laec_core::spec::CampaignSpec)
/// (v2: grid axes + execution mode), the typed
/// [`CampaignBuilder`](laec_core::spec::CampaignBuilder), the
/// [`Campaign`](laec_core::spec::Campaign) dispatcher and everything a spec
/// is made of.
///
/// ```
/// use laec::prelude::*;
///
/// let validated = CampaignBuilder::smoke()
///     .named_workloads(["vector_sum"])
///     .schemes([EccScheme::NoEcc, EccScheme::Laec])
///     .validate()
///     .expect("a valid spec");
/// let outcome = Campaign::new(validated).run(2);
/// assert!(outcome.architecturally_equivalent());
/// ```
pub mod prelude {
    pub use laec_core::campaign::{
        render_campaign, CampaignCell, CampaignReport, PlatformVariant, WorkloadSet,
    };
    pub use laec_core::observe::record_outcome_metrics;
    pub use laec_core::sampling::{
        render_sampled, SampleExecution, SampledReport, Sampler, SamplingPlan,
    };
    pub use laec_core::spec::{
        engine_for, Campaign, CampaignBuilder, CampaignEngine, CampaignOutcome, CampaignSpec,
        EngineCaps, ExecutionMode, SpecError, ValidatedSpec,
    };
    pub use laec_core::trace_backed::TraceBackedStats;
    pub use laec_mem::FaultTarget;
    pub use laec_obs::{MetricsDump, Obs};
    pub use laec_pipeline::{EccScheme, PipelineConfig, Simulator};
    pub use laec_workloads::GeneratorConfig;
}

pub use laec_core as core;
pub use laec_ecc as ecc;
pub use laec_fleet as fleet;
pub use laec_isa as isa;
pub use laec_mem as mem;
pub use laec_obs as obs;
pub use laec_pipeline as pipeline;
pub use laec_smp as smp;
pub use laec_trace as trace;
pub use laec_workloads as workloads;
